"""Wire-format codecs for the analysis result types.

The API layer (:mod:`repro.api`) promises JSON-serializable responses:
every result type exposes ``to_dict``/``from_dict`` built on the helpers
here.  The codecs live in :mod:`repro.utils` -- not next to the result
dataclasses -- because serialization is needed across layers that must
not import each other (``analysis``/``defense``/``dynamic`` results are
serialized by the API facade, which itself imports all three).

Conventions:

- enums serialize as their ``value`` strings (``Platform.WEB`` ->
  ``"web"``), and enum-keyed mappings become string-keyed dicts;
- frozensets serialize as *sorted* lists, so equal values produce equal
  documents (canonical wire form);
- nested structures round-trip exactly: ``from_dict(to_dict(x)) == x``
  for every supported type.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional

from repro.levels.engine import DependencyLevel
from repro.model.account import AuthPath, AuthPurpose
from repro.model.attacker import AttackerCapability, AttackerProfile
from repro.model.factors import CredentialFactor, PersonalInfoKind, Platform

__all__ = [
    "attacker_profile_from_dict",
    "attacker_profile_to_dict",
    "auth_path_from_dict",
    "auth_path_to_dict",
    "enum_keyed_dict",
    "enum_keyed_from_dict",
    "info_kinds_from_list",
    "info_kinds_to_list",
    "level_map_from_dict",
    "level_map_to_dict",
    "platform_map_from_dict",
    "platform_map_to_dict",
]


def enum_keyed_dict(mapping: Mapping, value=lambda v: v) -> Dict[str, Any]:
    """``{Enum: v}`` -> ``{enum.value: value(v)}``, insertion order kept."""
    return {key.value: value(item) for key, item in mapping.items()}


def enum_keyed_from_dict(
    document: Mapping[str, Any], enum_cls, value=lambda v: v
) -> Dict[Any, Any]:
    """Inverse of :func:`enum_keyed_dict` for one enum class."""
    return {enum_cls(key): value(item) for key, item in document.items()}


def platform_map_to_dict(
    mapping: Mapping[Platform, Mapping], inner=lambda v: dict(v)
) -> Dict[str, Any]:
    """Per-platform nested mapping -> plain dict keyed by platform value."""
    return enum_keyed_dict(mapping, inner)


def platform_map_from_dict(
    document: Mapping[str, Any], inner=lambda v: v
) -> Dict[Platform, Any]:
    """Inverse of :func:`platform_map_to_dict`."""
    return enum_keyed_from_dict(document, Platform, inner)


def level_map_to_dict(
    dependency: Mapping[Platform, Mapping[DependencyLevel, float]],
) -> Dict[str, Dict[str, float]]:
    """The Section IV-B payload shape: platform -> level -> fraction."""
    return platform_map_to_dict(dependency, lambda by_level: enum_keyed_dict(by_level))


def level_map_from_dict(
    document: Mapping[str, Mapping[str, float]],
) -> Dict[Platform, Dict[DependencyLevel, float]]:
    """Inverse of :func:`level_map_to_dict`."""
    return platform_map_from_dict(
        document,
        lambda by_level: enum_keyed_from_dict(by_level, DependencyLevel, float),
    )


def info_kinds_to_list(kinds: Iterable[PersonalInfoKind]) -> List[str]:
    """Canonical (sorted) wire form of an information-kind set."""
    return sorted(kind.value for kind in kinds)


def info_kinds_from_list(values: Iterable[str]) -> FrozenSet[PersonalInfoKind]:
    """Inverse of :func:`info_kinds_to_list`."""
    return frozenset(PersonalInfoKind(value) for value in values)


def auth_path_to_dict(path: Optional[AuthPath]) -> Optional[Dict[str, Any]]:
    """One authentication path as a plain document (``None`` passes through,
    matching round-0 closure entries with no takeover path)."""
    if path is None:
        return None
    return {
        "service": path.service,
        "platform": path.platform.value,
        "purpose": path.purpose.value,
        "factors": sorted(factor.value for factor in path.factors),
        "linked_providers": sorted(path.linked_providers),
        "label": path.label,
    }


def auth_path_from_dict(
    document: Optional[Mapping[str, Any]],
) -> Optional[AuthPath]:
    """Inverse of :func:`auth_path_to_dict`."""
    if document is None:
        return None
    return AuthPath(
        service=document["service"],
        platform=Platform(document["platform"]),
        purpose=AuthPurpose(document["purpose"]),
        factors=frozenset(
            CredentialFactor(value) for value in document["factors"]
        ),
        linked_providers=frozenset(document.get("linked_providers", ())),
        label=document.get("label", ""),
    )


def attacker_profile_to_dict(profile: AttackerProfile) -> Dict[str, Any]:
    """Attacker profile as a plain document (capabilities + known info)."""
    return {
        "capabilities": sorted(c.value for c in profile.capabilities),
        "known_info": info_kinds_to_list(profile.known_info),
    }


def attacker_profile_from_dict(
    document: Mapping[str, Any],
) -> AttackerProfile:
    """Inverse of :func:`attacker_profile_to_dict`."""
    return AttackerProfile(
        capabilities=frozenset(
            AttackerCapability(value) for value in document["capabilities"]
        ),
        known_info=info_kinds_from_list(document["known_info"]),
    )
