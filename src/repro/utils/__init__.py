"""Small shared utilities: logical clock, seeded RNG streams, text tables."""

from repro.utils.clock import Clock
from repro.utils.rng import SeedSequence
from repro.utils.tables import format_table

__all__ = ["Clock", "SeedSequence", "format_table"]
