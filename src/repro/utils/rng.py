"""Deterministic random-stream management.

Every stochastic component in the reproduction (identity generation, catalog
synthesis, telecom noise, sniffer frequency hopping) draws from a named
sub-stream derived from one root seed.  Deriving streams by *name* rather
than by call order means adding a new component never perturbs the random
numbers an existing component sees -- the property that keeps benchmark
output stable across library versions.
"""

from __future__ import annotations

import hashlib
import random


class SeedSequence:
    """Derives independent, reproducible :class:`random.Random` streams.

    >>> root = SeedSequence(42)
    >>> a = root.stream("catalog")
    >>> b = root.stream("telecom")
    >>> a.random() != b.random()
    True
    >>> root.stream("catalog").random() == SeedSequence(42).stream("catalog").random()
    True
    """

    def __init__(self, root_seed: int) -> None:
        self._root_seed = int(root_seed)

    @property
    def root_seed(self) -> int:
        """The root seed this sequence was built from."""
        return self._root_seed

    def derive(self, name: str) -> int:
        """Return the integer seed for the named sub-stream."""
        digest = hashlib.sha256(
            f"{self._root_seed}:{name}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big")

    def stream(self, name: str) -> random.Random:
        """Return a fresh :class:`random.Random` for the named sub-stream."""
        return random.Random(self.derive(name))

    def child(self, name: str) -> "SeedSequence":
        """Return a nested sequence (for components with their own subparts)."""
        return SeedSequence(self.derive(name))
