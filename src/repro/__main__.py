"""``python -m repro`` -- the pipe-composable CLI (see docs/cli.md)."""

import sys

from repro.cli.main import main

if __name__ == "__main__":
    sys.exit(main())
