"""Dependency-level machinery: global depth fixpoints, served live.

Carved out of the :mod:`repro.core.tdg` monolith: the graph keeps the
per-node analysis (coverage splits, parents, couples), this package owns
everything *global* about Section IV-B-1's dependency levels.

Module map
==========

:mod:`repro.levels.engine`
    :class:`DepthFixpointEngine` -- the joint-coverage and pure-full-chain
    depth fixpoints, the per-service level classification, and the
    incremental maintenance that keeps all three equal to a from-scratch
    rebuild under :class:`~repro.dynamic.events.EcosystemDelta` streams.
    Also home of :class:`DependencyLevel` and the :data:`MAX_DEPTH` cap
    (re-exported by :mod:`repro.core.tdg` for compatibility).

:mod:`repro.levels.aggregates`
    :class:`FactorDepthBuckets` -- per-factor provider-depth buckets with
    O(1) "minimal provider depth excluding one service" answers and the
    summary comparison that gates delta propagation.

:mod:`repro.levels.parents`
    :class:`SignatureParentsView` -- Definitions 1-2's member sets as
    materialized per-residual-signature postings joins (intersection /
    union-minus-intersection of the provider postings), retracted per
    delta only for signatures whose factors' postings moved and
    re-joined on the next read.  The graph's ``full_capacity_parents``
    / ``half_capacity_parents`` and this engine's maintained parents
    map read through it.

Fixpoint invariants
===================

Both depth maps are least fixpoints of *superior* recurrences (every
right-hand depth is strictly smaller than the left-hand value):

- joint: ``depth(v) = 1 + min over non-blocked paths of max over residual
  factors of the factor's minimal provider depth`` (providers meaning full
  providers, combinable masked-view pools, or accepted linked accounts,
  always excluding ``v`` itself), with ``depth = 0`` for directly
  compromisable services and a cap of :data:`~repro.levels.engine.MAX_DEPTH`;
- pure-full: ``depth(v) = 1 + min over full-capacity parents``.

Superiority makes every fixpoint grounded in the depth-0 services and
therefore *unique* -- which is why the engine's incremental answers can be
(and, in ``tests/test_dynamic_equivalence.py``, are) compared bit-for-bit
against the seed engine's round-based rebuild at every mutation step.

Delta propagation
=================

A delta flows in as (touched services, affected factors, combining
factors, changed names).  The engine seeds a dirty cone from the reverse-
dependency postings of :class:`~repro.core.index.EcosystemIndex`
(factor -> demanding services, provider -> linking services), then runs a
two-phase worklist per map: phase A retracts entries whose derivation is
no longer supported (depth increases and removals -- the survivors form a
self-supported pre-fixpoint), phase B re-derives the retracted cone
descending to the unique fixpoint (depth decreases and re-insertions).
Pushes are gated by the factor depth summaries: a change that moves no
summary stops propagating immediately.  Level-classification entries are
dropped per service only when their inputs changed; everything else is
served from cache.
"""

from repro.levels.aggregates import DepthSummary, FactorDepthBuckets
from repro.levels.engine import MAX_DEPTH, DependencyLevel, DepthFixpointEngine
from repro.levels.parents import SignatureParentsView

__all__ = [
    "MAX_DEPTH",
    "DependencyLevel",
    "DepthFixpointEngine",
    "DepthSummary",
    "FactorDepthBuckets",
    "SignatureParentsView",
]
