"""Per-factor depth aggregates: the gating structure of the delta-BFS.

The joint-coverage fixpoint asks, over and over, one question per residual
factor of one path: *what is the minimal compromise depth among the
factor's providers, excluding the path's own service?*  Answering it by
scanning the factor's provider postings would make every re-derivation
O(providers); answering it from an aggregate makes it O(1) and -- just as
important -- makes **propagation gating** possible: a provider's depth
change that does not move the aggregate's answer for any consumer cannot
change any consumer's depth, so the delta-BFS stops there.

:class:`FactorDepthBuckets` keeps, per credential factor, one set of
provider names per depth value (depths are capped at
:data:`~repro.core.tdg._MAX_DEPTH`, so the bucket list is tiny and every
update is O(1)).  From the buckets it derives a :class:`DepthSummary`
capturing *exactly* what the excluding-one-service minimum depends on:

- ``min1`` -- the minimal provider depth;
- whether two or more providers sit at ``min1`` (then the excluding
  minimum is ``min1`` for every consumer);
- otherwise ``sole`` -- the single provider at ``min1`` -- and ``min2``,
  the minimal depth among the *other* providers (the answer when ``sole``
  itself is the excluded service).

Two summaries being equal therefore guarantees every consumer's
excluding-minimum is unchanged, which is the soundness condition the
engine's gated pushes rely on.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set

from repro.model.factors import CredentialFactor

#: Depth values run 0..8 (the level analysis' cap), so nine buckets.
BUCKET_COUNT = 9


@dataclasses.dataclass(frozen=True)
class DepthSummary:
    """Everything the excluding-one-service minimum depends on."""

    #: Minimal provider depth.
    min1: int
    #: Whether at least two providers sit at ``min1``.
    crowded: bool
    #: The single provider at ``min1`` (``None`` when ``crowded``).
    sole: Optional[str]
    #: Minimal depth among providers other than ``sole`` (``None`` when
    #: ``crowded`` or when ``sole`` is the only provider at any depth).
    min2: Optional[int]

    def min_excluding(self, service: str) -> Optional[int]:
        """Minimal provider depth over providers other than ``service``."""
        if self.crowded or self.sole != service:
            return self.min1
        return self.min2


class FactorDepthBuckets:
    """Depth buckets per factor over one evolving depth map."""

    def __init__(self) -> None:
        self._buckets: Dict[CredentialFactor, List[Set[str]]] = {}
        self._summaries: Dict[CredentialFactor, Optional[DepthSummary]] = {}

    def _factor_buckets(self, factor: CredentialFactor) -> List[Set[str]]:
        buckets = self._buckets.get(factor)
        if buckets is None:
            buckets = [set() for _ in range(BUCKET_COUNT)]
            self._buckets[factor] = buckets
            self._summaries[factor] = None
        return buckets

    def summary(self, factor: CredentialFactor) -> Optional[DepthSummary]:
        """Current summary for ``factor`` (``None`` when no provider has a
        finite depth)."""
        return self._summaries.get(factor)

    def min_excluding(
        self, factor: CredentialFactor, service: str
    ) -> Optional[int]:
        """O(1) minimal provider depth for ``factor``, excluding ``service``."""
        summary = self._summaries.get(factor)
        if summary is None:
            return None
        return summary.min_excluding(service)

    def _recount(self, factor: CredentialFactor) -> None:
        buckets = self._buckets[factor]
        summary: Optional[DepthSummary] = None
        for depth, bucket in enumerate(buckets):
            if not bucket:
                continue
            if summary is None:
                if len(bucket) >= 2:
                    summary = DepthSummary(
                        min1=depth, crowded=True, sole=None, min2=None
                    )
                    break
                summary = DepthSummary(
                    min1=depth,
                    crowded=False,
                    sole=next(iter(bucket)),
                    min2=None,
                )
            else:
                summary = dataclasses.replace(summary, min2=depth)
                break
        self._summaries[factor] = summary

    def move(
        self,
        service: str,
        factor: CredentialFactor,
        old_depth: Optional[int],
        new_depth: Optional[int],
    ) -> bool:
        """Move one provider between buckets; ``True`` iff the summary --
        and hence possibly some consumer's answer -- changed."""
        buckets = self._factor_buckets(factor)
        if old_depth is not None:
            buckets[old_depth].discard(service)
        if new_depth is not None:
            buckets[new_depth].add(service)
        before = self._summaries.get(factor)
        self._recount(factor)
        return self._summaries.get(factor) != before

    def place(
        self, service: str, factor: CredentialFactor, depth: int
    ) -> None:
        """Batch-mode insert: bucket only, no summary recount.  Callers
        must :meth:`refresh` every placed factor before querying."""
        self._factor_buckets(factor)[depth].add(service)

    def refresh(self, factor: CredentialFactor) -> None:
        """Recount one factor's summary after a batch of :meth:`place`."""
        if factor in self._buckets:
            self._recount(factor)
