"""Per-signature parent postings: Definitions 1-2 as materialized views.

The paper's parent relations are per-service questions -- *which nodes
alone (Definition 1) or partially (Definition 2) unlock one of this
service's paths?* -- but their answers are almost entirely shared: for a
path whose residual factors do not include ``LINKED_ACCOUNT``, the
provider options depend only on the *residual-factor signature*, not on
the path or the service carrying it.  Hundreds of services collapse onto
a handful of signatures, so per-service intersection rebuilds inside a
mutation's dirty cone were doing the same set algebra over and over --
the ``full_capacity_parents`` recomputation tail the churn benchmarks
surfaced after the level engine went incremental.

:class:`SignatureParentsView` materializes, per signature ``S``:

- ``full_members(S)  = intersection over f in S of providers(f)`` --
  the nodes providing *every* factor of the signature (Definition 1's
  member set before self-exclusion);
- ``half_members(S)  = union minus intersection`` -- the nodes providing
  *some but not all* factors (Definition 2's member set).

Self-exclusion distributes over both unions and intersections, so a
service's parents are exact unions of these signature sets minus the
service itself; ``tests/test_dynamic_equivalence.py`` locks the
view-backed answers bit-for-bit against scratch rebuilds after every
mutation.

Since the id-compaction pass the member sets live as **service-id
bitmasks** keyed by **interned signature ids**
(:class:`~repro.core.ids.SignatureInterner`): a derivation is a chain of
big-int ANDs/ORs over the attacker index's provider masks, and a
retraction intersects the interner's factor -> signatures postings with
the live-entry mask instead of subset-testing every cached signature.
The frozenset API is a decoding cache on top.

Maintenance is the two-phase discipline of the level engine, one tier
down:

- **phase A (retract)**: a delta names the factors whose provider
  postings changed; :meth:`retract` drops exactly the signature entries
  containing one of them.  Signatures disjoint from the delta keep their
  member sets verbatim -- the common case, since most mutations move a
  few factors' postings.
- **phase B (re-derive)**: the next read of a retracted signature joins
  the *current* per-factor provider masks of
  :class:`~repro.core.index.AttackerIndex`, once per signature instead
  of once per (service, path).

The view is attacker-specific (provider postings are a profile
property); each :class:`~repro.core.tdg.TransformationDependencyGraph`
owns one lazily and routes its delta invalidation through it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, Tuple

from repro.core.ids import SignatureInterner, iter_ids
from repro.model.factors import CredentialFactor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.tdg import TransformationDependencyGraph

__all__ = ["SignatureParentsView"]


class SignatureParentsView:
    """Materialized full/half parent member masks per residual signature.

    Keys are residual-factor signatures (frozensets of
    :class:`~repro.model.factors.CredentialFactor`) that never contain
    ``LINKED_ACCOUNT`` -- linked paths stay per-path in the graph, since
    their provider options are a property of the path.  Entries are
    derived on first read and survive every delta that does not touch
    one of their factors' provider postings.
    """

    def __init__(self, graph: "TransformationDependencyGraph") -> None:
        self._graph = graph
        #: Signature interner; ids key the mask tables below and its
        #: factor -> signature-ids postings drive retraction.
        self._sigs = SignatureInterner()
        #: Bitmask over signature ids: which entries are live (derived and
        #: not yet retracted).
        self._entries_mask: int = 0
        # sig id -> service-id bitmask (sources of truth) ...
        self._full_masks: Dict[int, int] = {}
        self._half_masks: Dict[int, int] = {}
        # ... and their lazily decoded frozenset views.
        self._full_views: Dict[int, FrozenSet[str]] = {}  # decoded view
        self._half_views: Dict[int, FrozenSet[str]] = {}  # decoded view
        # Observability counters: signatures deltas retracted, and reads
        # that had to re-join the postings.  Registry children on the
        # graph's shared handle; ``stats()`` is the thin view over them
        # (``tests/test_levels_engine.py`` pins the retraction
        # accounting).
        obs = graph.instrumentation()
        label = graph.instrumentation_label()
        self._retractions = obs.counter(
            "repro_parents_retractions_total",
            "Signature member-set entries dropped by delta retraction.",
            labels=("attacker",),
        ).labels(attacker=label)
        self._derivations = obs.counter(
            "repro_parents_derivations_total",
            "Signature member-set joins derived on read.",
            labels=("attacker",),
        ).labels(attacker=label)

    # ------------------------------------------------------------------
    # Phase A: retraction
    # ------------------------------------------------------------------

    def retract(self, affected_factors: FrozenSet[CredentialFactor]) -> None:
        """Drop every signature entry containing an affected factor.

        Called by
        :meth:`~repro.core.tdg.TransformationDependencyGraph.invalidate_after_delta`
        after the indexes absorbed a delta.  The stale set is one bitmask
        intersection: the union of the interner's factor -> signature-id
        postings over the affected factors, AND the live-entry mask.
        Only signatures whose postings actually changed lose their
        entries; the next read re-derives exactly those (phase B), so a
        mutation's parent-set bill is O(affected signatures), not
        O(services x paths).
        """
        if not affected_factors or not self._entries_mask:
            return
        stale = 0
        for factor in affected_factors:
            stale |= self._sigs.containing(factor)
        stale &= self._entries_mask
        for sig_id in iter_ids(stale):
            # Both member sets derive together, so both retract together.
            del self._full_masks[sig_id]
            self._half_masks.pop(sig_id, None)
            self._full_views.pop(sig_id, None)
            self._half_views.pop(sig_id, None)
        self._entries_mask &= ~stale
        self._retractions.inc(stale.bit_count())

    # ------------------------------------------------------------------
    # Phase B: derivation on read
    # ------------------------------------------------------------------

    def _derive(self, signature: FrozenSet[CredentialFactor]) -> int:
        """Join the signature against the live provider masks; returns the
        signature's interned id."""
        self._derivations.inc()
        view = self._graph.attacker_index()
        sig_id = self._sigs.intern(signature)
        factors = iter(signature)
        first = view.static_provider_mask(next(factors))
        full = first
        union = first
        for factor in factors:
            mask = view.static_provider_mask(factor)
            full &= mask
            union |= mask
        self._full_masks[sig_id] = full
        self._half_masks[sig_id] = union & ~full
        self._entries_mask |= 1 << sig_id
        return sig_id

    def full_members_mask(
        self, signature: FrozenSet[CredentialFactor]
    ) -> int:
        """Service-id bitmask of nodes providing every factor of
        ``signature``."""
        sig_id = self._sigs.get(signature)
        if sig_id is None or not (self._entries_mask >> sig_id) & 1:
            sig_id = self._derive(signature)
        return self._full_masks[sig_id]

    def half_members_mask(
        self, signature: FrozenSet[CredentialFactor]
    ) -> int:
        """Service-id bitmask of nodes providing some but not all factors
        of ``signature``."""
        sig_id = self._sigs.get(signature)
        if sig_id is None or not (self._entries_mask >> sig_id) & 1:
            sig_id = self._derive(signature)
        return self._half_masks[sig_id]

    def full_members(
        self, signature: FrozenSet[CredentialFactor]
    ) -> FrozenSet[str]:
        """Nodes providing every factor of ``signature`` (Definition 1's
        member postings; callers subtract the consuming service)."""
        sig_id = self._sigs.get(signature)
        if sig_id is None or not (self._entries_mask >> sig_id) & 1:
            sig_id = self._derive(signature)
        view = self._full_views.get(sig_id)
        if view is None:
            view = self._graph.ecosystem_index().decode_mask(
                self._full_masks[sig_id]
            )
            self._full_views[sig_id] = view
        return view

    def half_members(
        self, signature: FrozenSet[CredentialFactor]
    ) -> FrozenSet[str]:
        """Nodes providing some but not all factors of ``signature``
        (Definition 2's member postings, before self-exclusion)."""
        sig_id = self._sigs.get(signature)
        if sig_id is None or not (self._entries_mask >> sig_id) & 1:
            sig_id = self._derive(signature)
        view = self._half_views.get(sig_id)
        if view is None:
            view = self._graph.ecosystem_index().decode_mask(
                self._half_masks[sig_id]
            )
            self._half_views[sig_id] = view
        return view

    # ------------------------------------------------------------------
    # Introspection (differential suites and observability)
    # ------------------------------------------------------------------

    def snapshot(
        self,
    ) -> Dict[
        FrozenSet[CredentialFactor], Tuple[FrozenSet[str], FrozenSet[str]]
    ]:
        """Every materialized signature's (full, half) member sets --
        what the differential suite compares against scratch joins."""
        return {
            self._sigs.decode(sig_id): (
                self.full_members(self._sigs.decode(sig_id)),
                self.half_members(self._sigs.decode(sig_id)),
            )
            for sig_id in iter_ids(self._entries_mask)
        }

    def interner_size(self) -> int:
        """Signatures ever interned (the id-table width; never shrinks)."""
        return self._sigs.high_water

    def stats(self) -> Dict[str, int]:
        """Entry/retraction/derivation counters (a thin view over the
        ``repro_parents_*_total`` registry children)."""
        return {
            "entries": self._entries_mask.bit_count(),
            "retractions": int(self._retractions.value),
            "derivations": int(self._derivations.value),
        }
