"""Per-signature parent postings: Definitions 1-2 as materialized views.

The paper's parent relations are per-service questions -- *which nodes
alone (Definition 1) or partially (Definition 2) unlock one of this
service's paths?* -- but their answers are almost entirely shared: for a
path whose residual factors do not include ``LINKED_ACCOUNT``, the
provider options depend only on the *residual-factor signature*, not on
the path or the service carrying it.  Hundreds of services collapse onto
a handful of signatures, so per-service intersection rebuilds inside a
mutation's dirty cone were doing the same set algebra over and over --
the ``full_capacity_parents`` recomputation tail the churn benchmarks
surfaced after the level engine went incremental.

:class:`SignatureParentsView` materializes, per signature ``S``:

- ``full_members(S)  = intersection over f in S of providers(f)`` --
  the nodes providing *every* factor of the signature (Definition 1's
  member set before self-exclusion);
- ``half_members(S)  = union minus intersection`` -- the nodes providing
  *some but not all* factors (Definition 2's member set).

Self-exclusion distributes over both unions and intersections, so a
service's parents are exact unions of these signature sets minus the
service itself; ``tests/test_dynamic_equivalence.py`` locks the
view-backed answers bit-for-bit against scratch rebuilds after every
mutation.

Maintenance is the two-phase discipline of the level engine, one tier
down:

- **phase A (retract)**: a delta names the factors whose provider
  postings changed; :meth:`retract` drops exactly the signature entries
  containing one of them.  Signatures disjoint from the delta keep their
  member sets verbatim -- the common case, since most mutations move a
  few factors' postings.
- **phase B (re-derive)**: the next read of a retracted signature joins
  the *current* per-factor provider postings of
  :class:`~repro.core.index.AttackerIndex` (C-speed frozenset algebra
  over the maintained posting lists), once per signature instead of once
  per (service, path).

The view is attacker-specific (provider postings are a profile
property); each :class:`~repro.core.tdg.TransformationDependencyGraph`
owns one lazily and routes its delta invalidation through it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, Tuple

from repro.model.factors import CredentialFactor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.tdg import TransformationDependencyGraph

__all__ = ["SignatureParentsView"]


class SignatureParentsView:
    """Materialized full/half parent member sets per residual signature.

    Keys are residual-factor signatures (frozensets of
    :class:`~repro.model.factors.CredentialFactor`) that never contain
    ``LINKED_ACCOUNT`` -- linked paths stay per-path in the graph, since
    their provider options are a property of the path.  Entries are
    derived on first read and survive every delta that does not touch
    one of their factors' provider postings.
    """

    def __init__(self, graph: "TransformationDependencyGraph") -> None:
        self._graph = graph
        self._full: Dict[FrozenSet[CredentialFactor], FrozenSet[str]] = {}
        self._half: Dict[FrozenSet[CredentialFactor], FrozenSet[str]] = {}
        # Observability counters: signatures deltas retracted, and reads
        # that had to re-join the postings.  Registry children on the
        # graph's shared handle; ``stats()`` is the thin view over them
        # (``tests/test_levels_engine.py`` pins the retraction
        # accounting).
        obs = graph.instrumentation()
        label = graph.instrumentation_label()
        self._retractions = obs.counter(
            "repro_parents_retractions_total",
            "Signature member-set entries dropped by delta retraction.",
            labels=("attacker",),
        ).labels(attacker=label)
        self._derivations = obs.counter(
            "repro_parents_derivations_total",
            "Signature member-set joins derived on read.",
            labels=("attacker",),
        ).labels(attacker=label)

    # ------------------------------------------------------------------
    # Phase A: retraction
    # ------------------------------------------------------------------

    def retract(self, affected_factors: FrozenSet[CredentialFactor]) -> None:
        """Drop every signature entry containing an affected factor.

        Called by
        :meth:`~repro.core.tdg.TransformationDependencyGraph.invalidate_after_delta`
        after the indexes absorbed a delta.  Only signatures whose
        postings actually changed lose their entries; the next read
        re-derives exactly those (phase B), so a mutation's parent-set
        bill is O(affected signatures), not O(services x paths).
        """
        if not affected_factors or not self._full:
            return
        stale = [
            signature
            for signature in self._full
            if signature & affected_factors
        ]
        for signature in stale:
            # Both member sets derive together, so both retract together.
            del self._full[signature]
            self._half.pop(signature, None)
        self._retractions.inc(len(stale))

    # ------------------------------------------------------------------
    # Phase B: derivation on read
    # ------------------------------------------------------------------

    def _derive(
        self, signature: FrozenSet[CredentialFactor]
    ) -> Tuple[FrozenSet[str], FrozenSet[str]]:
        """Join the signature against the live provider postings."""
        self._derivations.inc()
        view = self._graph.attacker_index()
        provider_sets = [
            view.static_provider_set(factor) for factor in signature
        ]
        full = frozenset.intersection(*provider_sets)
        half = frozenset.union(*provider_sets) - full
        self._full[signature] = full
        self._half[signature] = half
        return full, half

    def full_members(
        self, signature: FrozenSet[CredentialFactor]
    ) -> FrozenSet[str]:
        """Nodes providing every factor of ``signature`` (Definition 1's
        member postings; callers subtract the consuming service)."""
        cached = self._full.get(signature)
        if cached is not None:
            return cached
        return self._derive(signature)[0]

    def half_members(
        self, signature: FrozenSet[CredentialFactor]
    ) -> FrozenSet[str]:
        """Nodes providing some but not all factors of ``signature``
        (Definition 2's member postings, before self-exclusion)."""
        cached = self._half.get(signature)
        if cached is not None:
            return cached
        return self._derive(signature)[1]

    # ------------------------------------------------------------------
    # Introspection (differential suites and observability)
    # ------------------------------------------------------------------

    def snapshot(
        self,
    ) -> Dict[
        FrozenSet[CredentialFactor], Tuple[FrozenSet[str], FrozenSet[str]]
    ]:
        """Every materialized signature's (full, half) member sets --
        what the differential suite compares against scratch joins."""
        return {
            signature: (
                self._full[signature],
                self._half.get(signature, frozenset()),
            )
            for signature in self._full
        }

    def stats(self) -> Dict[str, int]:
        """Entry/retraction/derivation counters (a thin view over the
        ``repro_parents_*_total`` registry children)."""
        return {
            "entries": len(self._full),
            "retractions": int(self._retractions.value),
            "derivations": int(self._derivations.value),
        }
