"""The dependency-level engine: depth fixpoints maintained under deltas.

The paper's Section IV-B-1 percentages rest on two global fixpoints over
the Transformation Dependency Graph:

- the **joint-coverage depth** of a service: the minimal number of
  compromise waves before it falls, where each wave may pool information
  (including Insight 4's combined masked views) from every service taken
  in earlier waves;
- the **pure full-chain depth**: the same minimum restricted to
  single-parent (full-capacity) steps.

Both are least fixpoints of a *superior* recurrence --

``depth(v) = 1 + min over paths of max over residual factors of
min over providers of depth(provider)``

(and ``1 + min over full parents`` for the pure variant) -- where every
right-hand value is strictly smaller than the left.  Two consequences
carry the whole module:

1. **Any fixpoint is grounded**: finite depths chain strictly downward to
   depth-0 (directly compromisable) services, so the fixpoint is unique
   and any algorithm that terminates on a fixpoint computes *the* answer
   the from-scratch rounds of the seed engine computed.
2. **Descending chaotic iteration from a pre-fixpoint converges to it**,
   which is what makes incremental maintenance sound: after a delta, the
   engine (phase A) retracts exactly the entries whose derivation is no
   longer supported -- leaving a self-supported, hence pre-fixpoint,
   partial map -- and (phase B) re-derives the retracted cone by worklist,
   with every change pushed forward along the *reverse-dependency
   postings* (factor -> demanding services, provider -> linking services)
   that :class:`~repro.core.index.EcosystemIndex` maintains.

Propagation is gated by :class:`~repro.levels.aggregates.FactorDepthBuckets`:
a provider's depth change that leaves its factors' min-depth summaries
unchanged cannot change any consumer, so the BFS stops immediately -- the
common case for churn that touches services deep in (or absent from) the
dependency ordering.

The engine also owns the per-service level classification itself
(:meth:`DepthFixpointEngine.dependency_levels`), caching one entry per
service and invalidating, per delta, only the entries whose inputs --
own coverage signature, provider postings, or the depth of a service they
can draw factors from -- actually changed.  Platform path filtering is
threaded through one memo shared by the classification and
:meth:`is_direct`.  All invalidation is *lazy*: deltas accumulate via
:meth:`note_delta` and are flushed on the next query, so a mutation burst
costs one cone update, not one per mutation.
"""

from __future__ import annotations

import dataclasses
import enum
from collections import deque
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Optional,
    Set,
    Tuple,
)

from repro.core.ids import Interner, iter_ids
from repro.core.index import MASKABLE_FACTORS
from repro.levels.aggregates import FactorDepthBuckets
from repro.model.factors import CredentialFactor, Platform
from repro.obs import DEFAULT_SIZE_BUCKETS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.index import EcosystemIndex
    from repro.core.tdg import TDGNode, TransformationDependencyGraph
    from repro.model.account import AuthPath

__all__ = ["MAX_DEPTH", "DependencyLevel", "DepthFixpointEngine"]

#: Depth cap for the level analysis; the paper's categories stop at two
#: middle layers.
MAX_DEPTH = 8


class DependencyLevel(enum.Enum):
    """The paper's four dependency relationships plus "safe"."""

    DIRECT = "direct"
    ONE_LAYER = "one_layer"
    TWO_LAYER_FULL = "two_layer_full"
    TWO_LAYER_MIXED = "two_layer_mixed"
    SAFE = "safe"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclasses.dataclass(frozen=True)
class NodeSignature:
    """One service's local derivation inputs: per-path residual splits.

    Signatures are value-compared across deltas; an unchanged signature
    (same paths, same residual factors, same blocked flags, same direct
    status) means the service's own contribution to every fixpoint and to
    its level classification is unchanged.
    """

    direct: bool
    #: ``(path, residual factors, blocked)`` per takeover path, in order.
    entries: Tuple[
        Tuple["AuthPath", FrozenSet[CredentialFactor], bool], ...
    ]


class DepthFixpointEngine:
    """Owns the dependency-level fixpoints of one graph, incrementally.

    Built lazily by
    :meth:`~repro.core.tdg.TransformationDependencyGraph.levels_engine`;
    graphs that never ask a level/depth question never pay for it.  State
    lives in three tiers, each lazy:

    - **signatures**: per-service coverage splits, the direct set, and the
      platform-filtered path memo;
    - **depths**: the joint and pure-full depth maps, the factor depth
      buckets, and the memoized full-capacity parents with their reverse
      (children) postings;
    - **levels**: one classification entry per (platform, service).
    """

    def __init__(self, graph: "TransformationDependencyGraph") -> None:
        self._graph = graph
        self._innate = graph.innate_factors()
        # Tier 1: signatures.
        self._sig: Optional[Dict[str, NodeSignature]] = None
        self._direct: Set[str] = set()
        self._platform_paths: Dict[
            Tuple[str, Optional[Platform]], Tuple["AuthPath", ...]
        ] = {}
        # Tier 2: depth fixpoints.
        self._joint: Optional[Dict[str, int]] = None
        self._pure: Optional[Dict[str, int]] = None
        self._buckets: Optional[FactorDepthBuckets] = None
        self._provided: Dict[str, FrozenSet[CredentialFactor]] = {}
        self._partials: Dict[str, FrozenSet[CredentialFactor]] = {}
        #: Engine-private service id-space for the engine-owned bitmask
        #: postings below.  Unlike the ecosystem interner it NEVER retires
        #: ids: the engine treats a re-added service as the same entity a
        #: name set would (deltas are absorbed lazily, so a remove+re-add
        #: burst can land in one flush -- an ecosystem id would have been
        #: retired and reassigned between the placements, leaving stale
        #: bits; a name-stable bit cannot drift).
        self._bits: Interner[str] = Interner()
        #: service -> full-capacity-parent bitmask over engine ids (the
        #: graph's memoized parent masks re-encoded for the pure
        #: recurrence).
        self._parents: Optional[Dict[str, int]] = None
        #: parent -> children bitmask over engine ids.
        self._children: Dict[str, int] = {}
        #: Static provider-set sizes, to detect availability transitions
        #: (a factor's provider pool crossing the 0/1 boundary is the only
        #: postings change that can move a coverage split).
        self._provider_counts: Dict[CredentialFactor, int] = {}
        #: residual-factor signature -> bitmask (engine ids) of services
        #: with a path demanding exactly that signature; the subset tests
        #: against a touched node's provided-factor delta find every
        #: parenthood flip.
        self._residual_index: Dict[FrozenSet[CredentialFactor], int] = {}
        #: Pure-full depth buckets (depth -> engine-id bitmask), so one
        #: derivation is a handful of big-int ANDs against the parents
        #: mask instead of set algebra over names.
        self._pure_buckets: list = [0] * (MAX_DEPTH + 1)
        #: Per-factor combining memo: the depth-sorted reachable holder
        #: views plus per-exclusion answers (``None`` key = any
        #: non-holder).  Dropped when a holder's depth or view changes.
        self._combine_cache: Dict[CredentialFactor, Tuple[list, dict]] = {}
        #: Last-flushed combinability profiles (union size + per-holder
        #: unique counts); diffed to find whose *coverage answer* a
        #: masking change actually flips.
        self._combine_profiles: Dict[
            CredentialFactor, Tuple[int, Dict[str, int]]
        ] = {}
        # Tier 3: per-service level entries, one cache per platform.
        self._levels: Dict[
            Platform, Dict[str, FrozenSet[DependencyLevel]]
        ] = {}
        # Pending (unflushed) delta scope.
        self._pending_touched: Set[str] = set()
        self._pending_factors: Set[CredentialFactor] = set()
        self._pending_names: Set[str] = set()
        # Instrumentation: registry children resolved once against the
        # graph's shared handle (attached before lazy engines exist).
        # Flush-path instruments record the two-phase delta-BFS bill --
        # retractions (phase A) and re-derivations (phase B) per depth
        # map, plus the per-flush touched-signature and dirty-cone sizes.
        obs = graph.instrumentation()
        label = graph.instrumentation_label()
        self._obs = obs
        self._obs_label = label
        self._flushes = obs.counter(
            "repro_levels_flushes_total",
            "Delta flushes absorbed by the depth-fixpoint engine.",
            labels=("attacker",),
        ).labels(attacker=label)
        self._scratch_builds = obs.counter(
            "repro_levels_scratch_builds_total",
            "From-scratch depth-tier builds (first query or engine reset).",
            labels=("attacker",),
        ).labels(attacker=label)
        retractions = obs.counter(
            "repro_levels_retractions_total",
            "Depth entries retracted in phase A of a delta flush.",
            labels=("attacker", "map"),
        )
        rederivations = obs.counter(
            "repro_levels_rederivations_total",
            "Depth entries re-derived in phase B of a delta flush.",
            labels=("attacker", "map"),
        )
        self._retract_joint = retractions.labels(attacker=label, map="joint")
        self._retract_pure = retractions.labels(attacker=label, map="pure")
        self._rederive_joint = rederivations.labels(
            attacker=label, map="joint"
        )
        self._rederive_pure = rederivations.labels(attacker=label, map="pure")
        self._touched_signatures = obs.histogram(
            "repro_levels_touched_signatures",
            "Per-flush count of services whose coverage signature moved.",
            labels=("attacker",),
            buckets=DEFAULT_SIZE_BUCKETS,
        ).labels(attacker=label)
        self._dirty_cone = obs.histogram(
            "repro_levels_dirty_cone_services",
            "Per-flush size of the coverage-dirty service cone.",
            labels=("attacker",),
            buckets=DEFAULT_SIZE_BUCKETS,
        ).labels(attacker=label)

    # ------------------------------------------------------------------
    # Delta intake (lazy: queries flush)
    # ------------------------------------------------------------------

    def note_delta(
        self,
        touched_services: FrozenSet[str],
        affected_factors: FrozenSet[CredentialFactor],
        combining_factors: FrozenSet[CredentialFactor],
        changed_names: FrozenSet[str],
    ) -> None:
        """Record one delta's scope; the next query absorbs the union."""
        self._pending_touched |= touched_services
        self._pending_factors |= affected_factors | combining_factors
        self._pending_names |= changed_names

    def _flush(self) -> None:
        if not (
            self._pending_touched
            or self._pending_factors
            or self._pending_names
        ):
            return
        touched = self._pending_touched
        factors = self._pending_factors
        names = self._pending_names
        self._pending_touched = set()
        self._pending_factors = set()
        self._pending_names = set()
        if self._sig is None:
            return  # nothing built yet; the scratch build sees final state
        self._flushes.inc()
        with self._obs.span(
            "levels.flush",
            attacker=self._obs_label,
            touched=len(touched),
        ) as span:
            self._absorb(touched, factors, names, span)

    def _absorb(
        self,
        touched: Set[str],
        factors: Set[CredentialFactor],
        names: Set[str],
        span,
    ) -> None:
        """The flush body: route one accumulated delta scope through all
        three tiers (split from :meth:`_flush` so the whole absorption
        sits under one ``levels.flush`` span)."""
        graph = self._graph
        nodes = graph._nodes
        eco = graph.ecosystem_index()
        removed = {s for s in touched if s not in nodes}

        # Coverage-dirty cone: services whose residual splits can have
        # moved.  A coverage split reads a provider set's *emptiness*
        # (after self-exclusion), not its contents, so postings churn on a
        # factor whose provider pool stays comfortably above one provider
        # moves no split; only availability transitions, combinability
        # changes, and linked-name membership do.
        combining = {f for f in factors if f in MASKABLE_FACTORS}
        for factor in combining:
            self._combine_cache.pop(factor, None)
        availability: Set[CredentialFactor] = set()
        dirty: Set[str] = set(touched)
        combining_demanders: Set[str] = set()
        if self._joint is not None:
            view = graph.attacker_index()
            for factor in factors:
                if (
                    factor in self._innate
                    or factor is CredentialFactor.LINKED_ACCOUNT
                ):
                    continue
                old_count = self._provider_counts.get(factor, 0)
                new_count = view.static_provider_mask(factor).bit_count()
                self._provider_counts[factor] = new_count
                if old_count <= 1 or new_count <= 1:
                    availability.add(factor)
            # A masking change re-splits a consumer's coverage only if its
            # own combinable-excluding *answer* flipped; everyone else
            # keeps their signature and only re-derives depths (the
            # combining thresholds feed the joint recurrence directly).
            for factor in combining:
                demanders = eco.demanders(factor)
                combining_demanders |= demanders
                flips = self._combining_flips(factor, eco)
                if flips is None:
                    dirty |= demanders
                else:
                    dirty |= flips & demanders
        else:
            # Without the depth tier there is no baseline to diff; fall
            # back to the conservative cone for the signature refresh.
            availability = {f for f in factors if f not in self._innate}
        cone_mask = 0
        for factor in availability:
            cone_mask |= eco.demanders_mask(factor)
        for name in names:
            cone_mask |= eco.linked_consumers_mask(name)
        if cone_mask:
            dirty |= eco.decode_mask(cone_mask)

        # Tier 1 refresh: signatures, direct set, platform-path memos.
        for key in [k for k in self._platform_paths if k[0] in touched]:
            del self._platform_paths[key]
        sig_changes: Dict[
            str, Tuple[Optional[NodeSignature], Optional[NodeSignature]]
        ] = {}
        for service in dirty:
            old_sig = self._sig.get(service)
            if service in removed:
                if old_sig is not None:
                    del self._sig[service]
                    sig_changes[service] = (old_sig, None)
                self._direct.discard(service)
                continue
            new_sig = self._signature(service)
            self._sig[service] = new_sig
            if new_sig != old_sig:
                sig_changes[service] = (old_sig, new_sig)
            if new_sig.direct:
                self._direct.add(service)
            else:
                self._direct.discard(service)

        self._touched_signatures.observe(len(sig_changes))
        self._dirty_cone.observe(len(dirty))
        span.set_attribute("signatures_changed", len(sig_changes))
        span.set_attribute("dirty_cone", len(dirty))

        # Parenthood is content-sensitive but combining-insensitive, so
        # its cone excludes the combining demanders: touched services,
        # services whose residual split moved, availability/linked-name
        # consumers, plus the subset-test candidates.
        parents_dirty: Set[str] = set(touched) | set(sig_changes)
        if cone_mask:
            parents_dirty |= eco.decode_mask(cone_mask)
        # First-touch snapshots: phase A retracts conservatively and
        # phase B re-derives, so transient moves are common; only *net*
        # summary/depth changes can move a classification answer.
        initial_summaries: Dict[CredentialFactor, object] = {}
        initial_joint: Dict[str, Optional[int]] = {}
        initial_pure: Dict[str, Optional[int]] = {}
        if self._joint is not None:
            for service, (old_sig, new_sig) in sig_changes.items():
                self._index_signature(service, old_sig, add=False)
                self._index_signature(service, new_sig, add=True)
            summary_moved, provided_changes = (
                self._refresh_provider_memberships(
                    touched, removed, nodes, initial_summaries
                )
            )
            parents_dirty |= self._parenthood_candidates(
                provided_changes, eco
            )
            joint_seeds = set(dirty) | combining_demanders
            seeds_mask = 0
            for factor in summary_moved:
                seeds_mask |= eco.demanders_mask(factor)
            if seeds_mask:
                joint_seeds |= eco.decode_mask(seeds_mask)
            joint_retracted, joint_rederived = self._update_joint(
                joint_seeds, nodes, eco, initial_summaries, initial_joint
            )
            self._refresh_parents(parents_dirty, removed)
            pure_retracted, pure_rederived = self._update_pure(
                parents_dirty, nodes, initial_pure
            )
            self._retract_joint.inc(joint_retracted)
            self._rederive_joint.inc(joint_rederived)
            self._retract_pure.inc(pure_retracted)
            self._rederive_pure.inc(pure_rederived)
            span.set_attribute("joint_retracted", joint_retracted)
            span.set_attribute("joint_rederived", joint_rederived)
            span.set_attribute("pure_retracted", pure_retracted)
            span.set_attribute("pure_rederived", pure_rederived)

        # A classification entry reads exactly: the service's own coverage
        # signature, its paths' parenthood (pf0/pf1 intersections), and
        # per-factor pool answers (depth summaries, combining thresholds,
        # linked depths).  Invalidate along those channels from the *net*
        # state changes -- a depth change that moved no summary, combining
        # threshold, linked depth, or pf0/pf1 parenthood invalidates
        # nobody beyond the dirty cone itself.
        invalid: Set[str] = set(dirty) | parents_dirty | combining_demanders
        invalid_mask = 0
        buckets = self._buckets
        for factor, before in initial_summaries.items():
            if buckets.summary(factor) != before:
                invalid_mask |= eco.demanders_mask(factor)
        for service, before in initial_joint.items():
            if self._joint.get(service) == before:
                continue
            for factor in self._partials.get(service, ()):
                invalid_mask |= eco.demanders_mask(factor)
            invalid_mask |= eco.linked_consumers_mask(service)
        children_mask = 0
        for service, before in initial_pure.items():
            if self._pure.get(service) != before:
                children_mask |= self._children.get(service, 0)
        if invalid_mask:
            invalid |= eco.decode_mask(invalid_mask)
        if children_mask:
            invalid |= self._bits.decode_mask(children_mask)
        for cache in self._levels.values():
            for service in invalid:
                cache.pop(service, None)

    def _index_signature(
        self, service: str, sig: Optional[NodeSignature], add: bool
    ) -> None:
        """Add or remove one service's path signatures in the residual
        index (blocked and residual-free paths never parent anything)."""
        if sig is None:
            return
        bit = 1 << self._bits.intern(service)
        index = self._residual_index
        for _path, residual, blocked in sig.entries:
            if blocked or not residual:
                continue
            if add:
                index[residual] = index.get(residual, 0) | bit
            else:
                remaining = index.get(residual, 0) & ~bit
                if remaining:
                    index[residual] = remaining
                else:
                    index.pop(residual, None)

    def _combining_flips(
        self, factor: CredentialFactor, eco: "EcosystemIndex"
    ) -> Optional[Set[str]]:
        """Services whose ``combinable_excluding`` answer this masking
        change flipped, by diffing the index's combinability profile
        against the last flush's snapshot.  ``None`` means the
        no-exclusion answer itself flipped (every demander is dirty)."""
        _kind, length = MASKABLE_FACTORS[factor]
        old_union, old_unique = self._combine_profiles.get(factor, (0, {}))
        new_union, new_unique = eco.combinability_profile(factor)
        self._combine_profiles[factor] = (new_union, new_unique)
        if (old_union >= length) != (new_union >= length):
            return None
        flips: Set[str] = set()
        for service in set(old_unique) | set(new_unique):
            before = old_union - old_unique.get(service, 0) >= length
            after = new_union - new_unique.get(service, 0) >= length
            if before != after:
                flips.add(service)
        return flips

    def _parenthood_candidates(
        self,
        provided_changes: Dict[
            str, Tuple[FrozenSet[CredentialFactor], FrozenSet[CredentialFactor]]
        ],
        eco: "EcosystemIndex",
    ) -> Set[str]:
        """Services whose full-capacity parenthood a touched node's
        provided-factor delta can flip: one subset test per distinct
        residual signature (a node parents a path exactly when it provides
        the path's whole residual, plus being named on linked paths)."""
        candidates_mask = 0
        linked = CredentialFactor.LINKED_ACCOUNT
        for name, (old_provided, new_provided) in provided_changes.items():
            if old_provided == new_provided:
                continue
            for signature, services_mask in self._residual_index.items():
                base = (
                    signature - {linked} if linked in signature else signature
                )
                if not base:
                    continue
                if (base <= old_provided) == (base <= new_provided):
                    continue
                if linked in signature:
                    candidates_mask |= services_mask & self._bits.encode_live(
                        eco.linked_consumers_of(name)
                    )
                else:
                    candidates_mask |= services_mask
        return set(self._bits.decode_mask(candidates_mask))

    # ------------------------------------------------------------------
    # Tier 1: signatures
    # ------------------------------------------------------------------

    def _signature(self, service: str) -> NodeSignature:
        graph = self._graph
        node = graph._nodes[service]
        direct = False
        entries = []
        for path in node.takeover_paths:
            cover = graph.coverage(node, path)
            if cover.is_direct:
                direct = True
            entries.append((path, cover.residual, cover.is_blocked))
        return NodeSignature(direct=direct, entries=tuple(entries))

    def _ensure_signatures(self) -> None:
        if self._sig is not None:
            return
        self._sig = {}
        self._direct = set()
        for service in self._graph._nodes:
            sig = self._signature(service)
            self._sig[service] = sig
            if sig.direct:
                self._direct.add(service)

    def _paths_on(
        self, service: str, platform: Optional[Platform]
    ) -> Tuple["AuthPath", ...]:
        """Platform-filtered takeover paths, memoized once per service --
        the single filtering point :meth:`is_direct` and
        :meth:`dependency_levels` share."""
        key = (service, platform)
        paths = self._platform_paths.get(key)
        if paths is None:
            paths = self._graph._nodes[service].paths_on(platform)
            self._platform_paths[key] = paths
        return paths

    # ------------------------------------------------------------------
    # Tier 2: the depth fixpoints
    # ------------------------------------------------------------------

    def _ensure_depths(self) -> None:
        if self._joint is not None:
            return
        self._scratch_builds.inc()
        with self._obs.span("levels.build", attacker=self._obs_label):
            self._build_depths()

    def _build_depths(self) -> None:
        self._ensure_signatures()
        graph = self._graph
        nodes = graph._nodes
        view = graph.attacker_index()
        self._buckets = FactorDepthBuckets()
        self._joint = {}
        self._partials = {}
        for service, node in nodes.items():
            self._partials[service] = self._partial_factors(node)
        eco = graph.ecosystem_index()
        for factor in MASKABLE_FACTORS:
            self._combine_profiles[factor] = eco.combinability_profile(factor)
        # Provided sets come from inverting the attacker index's postings
        # (one pass over the posting lists, not one membership-rule
        # evaluation per node x factor; the rules are the same by
        # construction, which the differential suite locks).
        provided_sets: Dict[str, Set[CredentialFactor]] = {
            service: set() for service in nodes
        }
        for factor in CredentialFactor:
            if (
                factor is CredentialFactor.LINKED_ACCOUNT
                or factor in self._innate
            ):
                continue
            providers = view.static_provider_set(factor)
            self._provider_counts[factor] = len(providers)
            for name in providers:
                provided_sets[name].add(factor)
        self._provided = {
            service: frozenset(factors)
            for service, factors in provided_sets.items()
        }
        self._residual_index = {}
        for service in nodes:
            self._index_signature(service, self._sig[service], add=True)
        self._scratch_joint(nodes)
        self._parents = {}
        self._children = {}
        for service in nodes:
            parents_mask = self._to_engine_mask(
                graph.full_capacity_parents_mask(service), eco
            )
            self._parents[service] = parents_mask
            bit = 1 << self._bits.intern(service)
            for parent_id in iter_ids(parents_mask):
                parent = self._bits.decode(parent_id)
                self._children[parent] = self._children.get(parent, 0) | bit
        self._pure = {}
        self._scratch_pure(nodes)

    def _to_engine_mask(self, eco_mask: int, eco: "EcosystemIndex") -> int:
        """Re-encode an ecosystem-id bitmask onto the engine's
        name-stable id-space."""
        decode = eco.ids.decode
        intern = self._bits.intern
        mask = 0
        for service_id in iter_ids(eco_mask):
            mask |= 1 << intern(decode(service_id))
        return mask

    @staticmethod
    def _partial_factors(node: "TDGNode") -> FrozenSet[CredentialFactor]:
        return frozenset(
            factor
            for factor, (kind, _length) in MASKABLE_FACTORS.items()
            if node.pia_partial.get(kind)
        )

    def _scratch_joint(self, nodes) -> None:
        self._assign_scratch(
            [
                (service, 0)
                for service in nodes
                if self._sig[service].direct
            ]
        )
        unassigned = [s for s in nodes if s not in self._joint]
        for stage in range(1, MAX_DEPTH + 1):
            assigned = []
            for service in unassigned:
                cand = self._derive_joint(service)
                if cand is not None and cand <= stage:
                    assigned.append((service, cand))
            if not assigned:
                break
            self._assign_scratch(assigned)
            unassigned = [s for s in unassigned if s not in self._joint]

    def _assign_scratch(self, assignments) -> None:
        """Stage-batched joint assignment: one summary recount per touched
        factor instead of one per (service, factor) move."""
        touched_factors: Set[CredentialFactor] = set()
        for service, depth in assignments:
            self._joint[service] = depth
            for factor in self._provided.get(service, ()):
                self._buckets.place(service, factor, depth)
                touched_factors.add(factor)
            for factor in self._partials.get(service, ()):
                self._combine_cache.pop(factor, None)
        for factor in touched_factors:
            self._buckets.refresh(factor)

    def _scratch_pure(self, nodes) -> None:
        for service in nodes:
            if self._sig[service].direct:
                self._set_pure(service, 0)
        unassigned = [s for s in nodes if s not in self._pure]
        for stage in range(1, MAX_DEPTH + 1):
            assigned = []
            for service in unassigned:
                cand = self._derive_pure(service)
                if cand is not None and cand <= stage:
                    assigned.append((service, cand))
            if not assigned:
                break
            for service, cand in assigned:
                self._set_pure(service, cand)
            unassigned = [s for s in unassigned if s not in self._pure]

    # -- derivation -----------------------------------------------------

    def _derive_joint(self, service: str) -> Optional[int]:
        """The joint recurrence: 1 + min over paths of max over residual
        factors of the factor's minimal provider depth (``None`` when the
        service is unreachable or beyond the depth cap)."""
        sig = self._sig[service]
        if sig.direct:
            return 0
        best: Optional[int] = None
        for path, residual, blocked in sig.entries:
            if blocked:
                continue
            cost = 0
            for factor in residual:
                fcost = self._factor_cost(factor, path, service)
                if fcost is None:
                    cost = None
                    break
                if fcost > cost:
                    cost = fcost
            if cost is None:
                continue
            if best is None or cost < best:
                best = cost
                if best == 0:
                    break
        if best is None or best + 1 > MAX_DEPTH:
            return None
        return best + 1

    def _factor_cost(
        self, factor: CredentialFactor, path: "AuthPath", service: str
    ) -> Optional[int]:
        """Minimal compromise depth at which ``factor`` becomes poolable
        for ``path`` -- via a full provider (O(1) from the depth buckets)
        or by combining masked views in depth order."""
        if factor is CredentialFactor.LINKED_ACCOUNT:
            best: Optional[int] = None
            for name in path.linked_providers:
                if name == service:
                    continue
                depth = self._joint.get(name)
                if depth is not None and (best is None or depth < best):
                    best = depth
            return best
        best = self._buckets.min_excluding(factor, service)
        if factor in MASKABLE_FACTORS:
            combine = self._combine_min(factor, service)
            if combine is not None and (best is None or combine < best):
                best = combine
        return best

    def _combine_min(
        self, factor: CredentialFactor, excluded: str
    ) -> Optional[int]:
        """Minimal pool depth at which combined masked views (excluding
        ``excluded``'s own) reconstruct the factor's full value.

        Memoized per factor: the depth-sorted reachable views are computed
        once, every non-holder shares one answer (the ``None`` key) and
        holders get per-service entries; the whole factor entry is dropped
        whenever a holder's depth or view set changes."""
        eco = self._graph.ecosystem_index()
        entry = self._combine_cache.get(factor)
        if entry is None:
            position_masks = eco.partial_position_masks(factor)
            reachable = []
            joint = self._joint
            for name, _positions in eco.partial_holders[factor]:
                depth = joint.get(name)
                if depth is not None:
                    reachable.append((depth, name, position_masks[name]))
            reachable.sort(key=lambda item: item[0])
            entry = (reachable, {})
            self._combine_cache[factor] = entry
        reachable, answers = entry
        key: Optional[str] = (
            excluded if excluded in eco.partial_by_service[factor] else None
        )
        if key in answers:
            return answers[key]
        _kind, length = MASKABLE_FACTORS[factor]
        result: Optional[int] = None
        union = 0
        for depth, name, view_mask in reachable:
            if name == excluded:
                continue
            union |= view_mask
            if union.bit_count() >= length:
                result = depth
                break
        answers[key] = result
        return result

    def _derive_pure(self, service: str) -> Optional[int]:
        """The pure-full recurrence: 1 + the minimal depth among the
        service's memoized full-capacity parents (one big-int AND per
        depth bucket, not a scan over the parent set)."""
        if self._sig[service].direct:
            return 0
        parents_mask = self._parents.get(service, 0)
        if not parents_mask:
            return None
        buckets = self._pure_buckets
        for depth in range(MAX_DEPTH):
            if buckets[depth] & parents_mask:
                return depth + 1
        return None

    def _set_pure(self, service: str, new_depth: Optional[int]) -> None:
        old = self._pure.get(service)
        if old == new_depth:
            return
        bit = 1 << self._bits.intern(service)
        if old is not None:
            self._pure_buckets[old] &= ~bit
        if new_depth is None:
            self._pure.pop(service, None)
        else:
            self._pure[service] = new_depth
            self._pure_buckets[new_depth] |= bit

    # -- incremental maintenance ----------------------------------------

    def _set_joint(
        self, service: str, new_depth: Optional[int]
    ) -> Set[CredentialFactor]:
        """Move one service's joint depth; returns the provided factors
        whose bucket summary -- hence possibly some consumer -- changed."""
        old = self._joint.get(service)
        if new_depth is None:
            if old is None:
                return set()
            del self._joint[service]
        else:
            self._joint[service] = new_depth
        changed: Set[CredentialFactor] = set()
        for factor in self._provided.get(service, ()):
            if self._buckets.move(service, factor, old, new_depth):
                changed.add(factor)
        for factor in self._partials.get(service, ()):
            self._combine_cache.pop(factor, None)
        return changed

    def _refresh_provider_memberships(
        self,
        touched: Set[str],
        removed: Set[str],
        nodes,
        initial_summaries: Dict[CredentialFactor, object],
    ) -> Tuple[
        Set[CredentialFactor],
        Dict[
            str,
            Tuple[FrozenSet[CredentialFactor], FrozenSet[CredentialFactor]],
        ],
    ]:
        """Re-seat touched services in the factor buckets and partial/
        provided memos (their provider postings may have moved).  Returns
        the factors whose depth summary moved -- the joint seeds beyond
        the coverage cone -- and each service's (old, new) provided sets
        for the parenthood subset tests."""
        view = self._graph.attacker_index()
        summary_moved: Set[CredentialFactor] = set()
        provided_changes: Dict[
            str,
            Tuple[FrozenSet[CredentialFactor], FrozenSet[CredentialFactor]],
        ] = {}
        for service in touched:
            old_provided = self._provided.get(service, frozenset())
            old_partials = self._partials.get(service, frozenset())
            if service in removed:
                new_provided: FrozenSet[CredentialFactor] = frozenset()
                new_partials: FrozenSet[CredentialFactor] = frozenset()
            else:
                node = nodes[service]
                new_provided = view.provided_factors(node) - self._innate
                new_partials = self._partial_factors(node)
            provided_changes[service] = (old_provided, new_provided)
            self._snap_summaries(
                old_provided | new_provided, initial_summaries
            )
            depth = self._joint.get(service)
            for factor in old_provided - new_provided:
                if self._buckets.move(service, factor, depth, None):
                    summary_moved.add(factor)
            for factor in new_provided - old_provided:
                if self._buckets.move(service, factor, None, depth):
                    summary_moved.add(factor)
            for factor in old_partials ^ new_partials:
                self._combine_cache.pop(factor, None)
            if service in removed:
                self._provided.pop(service, None)
                self._partials.pop(service, None)
            else:
                self._provided[service] = new_provided
                self._partials[service] = new_partials
        return summary_moved, provided_changes

    def _snap_summaries(
        self,
        factors,
        initial_summaries: Dict[CredentialFactor, object],
    ) -> None:
        """Record each factor's summary the first time a flush is about
        to move it (the baseline for net-change detection)."""
        buckets = self._buckets
        for factor in factors:
            if factor not in initial_summaries:
                initial_summaries[factor] = buckets.summary(factor)

    def _push_joint_consumers(
        self,
        service: str,
        changed_factors: Set[CredentialFactor],
        wl: deque,
        inwl: Set[str],
        nodes,
        eco: "EcosystemIndex",
    ) -> None:
        """Forward-propagate one depth change along the reverse postings:
        demanders of factors whose summary moved, services linking this
        one, and demanders of maskable factors it holds views of.  The
        union is a handful of big-int ORs over the index's posting masks,
        decoded once."""
        targets_mask = 0
        for factor in changed_factors:
            targets_mask |= eco.demanders_mask(factor)
        for factor in self._partials.get(service, ()):
            targets_mask |= eco.demanders_mask(factor)
        targets_mask |= eco.linked_consumers_mask(service)
        if not targets_mask:
            return
        decode = eco.ids.decode
        for target_id in iter_ids(targets_mask):
            target = decode(target_id)
            if target in nodes and target not in inwl:
                inwl.add(target)
                wl.append(target)

    def _update_joint(
        self,
        dirty: Set[str],
        nodes,
        eco: "EcosystemIndex",
        initial_summaries: Dict[CredentialFactor, object],
        initial_joint: Dict[str, Optional[int]],
    ) -> Tuple[int, int]:
        """Two-phase delta-BFS on the joint map.  Every entry and factor
        summary is snapshotted into the ``initial_*`` maps at first touch,
        so the caller can compute net changes across both phases.
        Returns ``(phase A retractions, phase B re-derivations)`` -- the
        flush's actual bill, which the registry counters accumulate."""
        retracted = 0
        rederived = 0
        todo: Set[str] = set()
        wl = deque(dirty)
        inwl = set(dirty)
        # Phase A: retract entries whose derivation is no longer
        # supported (the map only shrinks, so the survivors form a
        # self-supported pre-fixpoint of the new system).
        while wl:
            service = wl.popleft()
            inwl.discard(service)
            old = self._joint.get(service)
            if service not in nodes:
                if old is not None:
                    retracted += 1
                    initial_joint.setdefault(service, old)
                    self._snap_summaries(
                        self._provided.get(service, ()), initial_summaries
                    )
                    changed = self._set_joint(service, None)
                    self._push_joint_consumers(
                        service, changed, wl, inwl, nodes, eco
                    )
                continue
            if old is None:
                todo.add(service)
                continue
            if self._derive_joint(service) == old:
                continue
            retracted += 1
            initial_joint.setdefault(service, old)
            self._snap_summaries(
                self._provided.get(service, ()), initial_summaries
            )
            changed = self._set_joint(service, None)
            todo.add(service)
            self._push_joint_consumers(service, changed, wl, inwl, nodes, eco)
        # Phase B: descending chaotic re-derivation of the retracted cone;
        # converges to the unique (grounded) fixpoint.
        wl = deque(todo)
        inwl = set(todo)
        while wl:
            service = wl.popleft()
            inwl.discard(service)
            if service not in nodes:
                continue
            rederived += 1
            cand = self._derive_joint(service)
            old = self._joint.get(service)
            if cand == old:
                continue
            initial_joint.setdefault(service, old)
            self._snap_summaries(
                self._provided.get(service, ()), initial_summaries
            )
            changed = self._set_joint(service, cand)
            self._push_joint_consumers(service, changed, wl, inwl, nodes, eco)
        return retracted, rederived

    def _refresh_parents(self, dirty: Set[str], removed: Set[str]) -> None:
        graph = self._graph
        eco = graph.ecosystem_index()
        decode = self._bits.decode
        for service in dirty:
            old = self._parents.get(service, 0)
            new = (
                0
                if service in removed
                else self._to_engine_mask(
                    graph.full_capacity_parents_mask(service), eco
                )
            )
            if new != old:
                bit = 1 << self._bits.intern(service)
                for parent_id in iter_ids(old & ~new):
                    parent = decode(parent_id)
                    remaining = self._children.get(parent, 0) & ~bit
                    if remaining:
                        self._children[parent] = remaining
                    else:
                        self._children.pop(parent, None)
                for parent_id in iter_ids(new & ~old):
                    parent = decode(parent_id)
                    self._children[parent] = self._children.get(parent, 0) | bit
            if service in removed:
                self._parents.pop(service, None)
            else:
                self._parents[service] = new
        for service in removed:
            self._children.pop(service, None)

    def _push_children(
        self, service: str, wl: deque, inwl: Set[str], nodes
    ) -> None:
        children_mask = self._children.get(service, 0)
        if not children_mask:
            return
        decode = self._bits.decode
        for child_id in iter_ids(children_mask):
            child = decode(child_id)
            if child in nodes and child not in inwl:
                inwl.add(child)
                wl.append(child)

    def _update_pure(
        self,
        dirty: Set[str],
        nodes,
        initial_pure: Dict[str, Optional[int]],
    ) -> Tuple[int, int]:
        """The same two-phase scheme on the pure-full map, propagating
        along the memoized parent -> children postings.  Returns
        ``(phase A retractions, phase B re-derivations)``."""
        retracted = 0
        rederived = 0
        todo: Set[str] = set()
        pure = self._pure
        wl = deque(dirty)
        inwl = set(dirty)
        while wl:
            service = wl.popleft()
            inwl.discard(service)
            old = pure.get(service)
            if service not in nodes:
                if old is not None:
                    retracted += 1
                    initial_pure.setdefault(service, old)
                    self._set_pure(service, None)
                    self._push_children(service, wl, inwl, nodes)
                continue
            if old is None:
                todo.add(service)
                continue
            if self._derive_pure(service) == old:
                continue
            retracted += 1
            initial_pure.setdefault(service, old)
            self._set_pure(service, None)
            todo.add(service)
            self._push_children(service, wl, inwl, nodes)
        wl = deque(todo)
        inwl = set(todo)
        while wl:
            service = wl.popleft()
            inwl.discard(service)
            if service not in nodes:
                continue
            rederived += 1
            cand = self._derive_pure(service)
            old = pure.get(service)
            if cand == old:
                continue
            initial_pure.setdefault(service, old)
            self._set_pure(service, cand)
            self._push_children(service, wl, inwl, nodes)
        return retracted, rederived

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def joint_depths(self) -> Dict[str, int]:
        """Minimal compromise depth per service, joint coverage allowed
        (unreachable services are absent).

        Invalidation contract: the map is never dropped wholesale.  A
        query first flushes pending deltas -- phase A retracts exactly
        the entries whose derivation the accumulated scope can reach
        (via the reverse-dependency postings), phase B re-derives the
        retracted cone to the unique fixpoint -- so the answer always
        equals a scratch rebuild, at O(affected cone) cost."""
        self._flush()
        self._ensure_depths()
        return dict(self._joint)

    def pure_full_depths(self) -> Dict[str, int]:
        """Minimal chain depth using only full-capacity steps.

        Same flush-then-serve contract as :meth:`joint_depths`,
        propagated along the memoized parent -> children postings."""
        self._flush()
        self._ensure_depths()
        return dict(self._pure)

    def full_capacity_parents_map(self) -> Dict[str, FrozenSet[str]]:
        """The memoized full-capacity parents of every service.

        Entries are maintained under deltas (refreshed only inside the
        parenthood-dirty cone, including the residual-signature subset
        tests that find provided-factor flips) and are backed by the
        graph's :class:`~repro.levels.parents.SignatureParentsView`
        joins, so a refresh costs per-signature set algebra, not
        per-service intersection rebuilds."""
        self._flush()
        self._ensure_depths()
        decode = self._bits.decode_mask
        return {
            service: decode(mask) for service, mask in self._parents.items()
        }

    def direct_services(self) -> FrozenSet[str]:
        """Services the attacker profile takes over with no chaining.

        Served from the tier-1 signature cache; a delta re-splits
        coverage only for services in its dirty cone (touched services,
        availability transitions, combinability flips, linked-name
        changes)."""
        self._flush()
        self._ensure_signatures()
        return frozenset(self._direct)

    def is_direct(
        self, service: str, platform: Optional[Platform] = None
    ) -> bool:
        """Whether the profile alone takes the service over (optionally on
        one platform, through the shared platform-path memo)."""
        self._flush()
        self._ensure_signatures()
        if service not in self._graph._nodes:
            raise KeyError(service)
        if platform is None:
            return service in self._direct
        paths = set(self._paths_on(service, platform))
        return any(
            path in paths and not blocked and not residual
            for path, residual, blocked in self._sig[service].entries
        )

    def dependency_levels(
        self, platform: Platform
    ) -> Dict[str, FrozenSet[DependencyLevel]]:
        """Per-service dependency levels on one platform, from the cache.

        Cache/invalidation contract: one entry per (platform, service).
        An entry reads exactly the service's own coverage signature,
        its paths' pf0/pf1 parenthood intersections, and per-factor
        pool answers (depth summaries, combining thresholds, linked
        depths); the flush drops entries only along *net* changes to
        those inputs, so after a mutation only the reachable cone is
        reclassified and everything else is served verbatim."""
        self._flush()
        self._ensure_depths()
        cache = self._levels.setdefault(platform, {})
        pf0: Optional[FrozenSet[str]] = None
        pf1: Optional[FrozenSet[str]] = None
        result: Dict[str, FrozenSet[DependencyLevel]] = {}
        for service, node in self._graph._nodes.items():
            paths = self._paths_on(service, platform)
            if not paths:
                continue
            entry = cache.get(service)
            if entry is None:
                if pf0 is None:
                    pf0 = self._bits.decode_mask(self._pure_buckets[0])
                    pf1 = self._bits.decode_mask(self._pure_buckets[1])
                entry = self._classify(service, paths, pf0, pf1)
                cache[service] = entry
            result[service] = entry
        return result

    def _classify(
        self,
        service: str,
        paths: Tuple["AuthPath", ...],
        pf0: FrozenSet[str],
        pf1: FrozenSet[str],
    ) -> FrozenSet[DependencyLevel]:
        """One service's level set: each path contributes its minimal
        category (a service lands in several categories when different
        reset combinations sit at different depths, which is why the
        paper's percentages do not sum to 100%)."""
        view = self._graph.attacker_index()
        by_path = {
            path: (residual, blocked)
            for path, residual, blocked in self._sig[service].entries
        }
        levels: Set[DependencyLevel] = set()
        for path in paths:
            residual, blocked = by_path[path]
            if blocked:
                continue
            if not residual:
                levels.add(DependencyLevel.DIRECT)
                continue
            provider_sets = [
                view.provider_names(factor, path) for factor in residual
            ]
            if frozenset.intersection(pf0, *provider_sets):
                levels.add(DependencyLevel.ONE_LAYER)
            elif frozenset.intersection(pf1, *provider_sets):
                levels.add(DependencyLevel.TWO_LAYER_FULL)
            elif all(
                (cost := self._factor_cost(factor, path, service)) is not None
                and cost <= 1
                for factor in residual
            ):
                levels.add(DependencyLevel.TWO_LAYER_MIXED)
        if not levels:
            # Either reachable only deeper than the paper's two-layer
            # categories (rare; folded into the mixed catch-all) or not
            # reachable at all on this platform -> safe.
            if self._reachable_on(service, paths, by_path):
                levels.add(DependencyLevel.TWO_LAYER_MIXED)
            else:
                levels.add(DependencyLevel.SAFE)
        return frozenset(levels)

    def _reachable_on(self, service: str, paths, by_path) -> bool:
        for path in paths:
            residual, blocked = by_path[path]
            if blocked:
                continue
            if all(
                self._factor_cost(factor, path, service) is not None
                for factor in residual
            ):
                return True
        return False
