"""Re-measuring the ecosystem under each countermeasure.

The evaluation answers the question Section VII leaves implicit: *how much
attack surface does each proposal actually remove?*  For the baseline,
each single defense, and all defenses combined it reports the
dependency-level fractions and the forward-closure (PAV) size under the
same attacker profile.

Like the measurement study, the evaluation is a thin client of the
:class:`~repro.api.AnalysisService` facade: the entry points are
delegating shims around :class:`~repro.api.DefenseEvalQuery` /
:class:`~repro.api.RolloutQuery`, so the ablation grid shares the
facade's version-keyed result cache and the per-graph closure cache.
The measurement *engine* itself lives in :func:`measure_outcome`.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.tdg import DependencyLevel
from repro.defense.builtin_auth import BuiltinAuthUpgrade
from repro.defense.hardening import EmailHardening, SymmetryRepair
from repro.defense.masking_policy import UnifiedMaskingPolicy
from repro.model.attacker import AttackerProfile
from repro.model.ecosystem import Ecosystem
from repro.model.factors import Platform
from repro.utils.serialization import (
    enum_keyed_dict,
    enum_keyed_from_dict,
    level_map_from_dict,
    level_map_to_dict,
)

#: A defense is anything that maps an ecosystem to a hardened ecosystem.
DefenseTransform = Callable[[Ecosystem], Ecosystem]


def standard_defenses() -> Dict[str, DefenseTransform]:
    """The paper's four proposals as named transforms (the registry the
    :class:`~repro.api.AnalysisService` facade preloads)."""
    return {
        "unified_masking": UnifiedMaskingPolicy().apply,
        "email_hardening": EmailHardening().apply,
        "symmetry_repair": SymmetryRepair().apply,
        "builtin_auth": BuiltinAuthUpgrade().apply,
    }


@dataclasses.dataclass(frozen=True)
class DefenseOutcome:
    """Measured attack surface under one defense configuration."""

    label: str
    pav_size: int
    service_count: int
    direct_fraction: Mapping[Platform, float]
    safe_fraction: Mapping[Platform, float]
    dependency: Mapping[Platform, Mapping[DependencyLevel, float]]

    @property
    def pav_fraction(self) -> float:
        """Fraction of services in the potential-victim set."""
        return self.pav_size / max(1, self.service_count)

    def to_dict(self) -> Dict[str, Any]:
        """Wire-ready document (enums as value strings)."""
        return {
            "label": self.label,
            "pav_size": self.pav_size,
            "service_count": self.service_count,
            "direct_fraction": enum_keyed_dict(self.direct_fraction),
            "safe_fraction": enum_keyed_dict(self.safe_fraction),
            "dependency": level_map_to_dict(self.dependency),
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "DefenseOutcome":
        """Inverse of :meth:`to_dict` (exact round-trip)."""
        return cls(
            label=document["label"],
            pav_size=document["pav_size"],
            service_count=document["service_count"],
            direct_fraction=enum_keyed_from_dict(
                document["direct_fraction"], Platform, float
            ),
            safe_fraction=enum_keyed_from_dict(
                document["safe_fraction"], Platform, float
            ),
            dependency=level_map_from_dict(document["dependency"]),
        )


def measure_outcome(
    label: str, tdg, service_count: int
) -> DefenseOutcome:
    """Measure one configuration's attack surface from its graph.

    The defense-evaluation *engine*: PAV from the (graph-cached) forward
    closure, dependency fractions from one batch call through the level
    engine so both platforms share warm fixpoints.  Used by the
    :class:`~repro.api.AnalysisService` facade for every variant of a
    :class:`~repro.api.DefenseEvalQuery`.
    """
    from repro.core.strategy import StrategyEngine

    closure = StrategyEngine(tdg).forward_closure()
    dependency: Mapping[Platform, Mapping[DependencyLevel, float]] = (
        tdg.levels_report((Platform.WEB, Platform.MOBILE))
    )
    direct: Dict[Platform, float] = {}
    safe: Dict[Platform, float] = {}
    for platform in (Platform.WEB, Platform.MOBILE):
        fractions = dependency[platform]
        direct[platform] = fractions[DependencyLevel.DIRECT]
        safe[platform] = fractions[DependencyLevel.SAFE]
    return DefenseOutcome(
        label=label,
        pav_size=len(closure.compromised),
        service_count=service_count,
        direct_fraction=direct,
        safe_fraction=safe,
        dependency=dependency,
    )


class DefenseEvaluation:
    """Runs the countermeasure ablation over one baseline ecosystem."""

    def __init__(
        self,
        ecosystem: Ecosystem,
        attacker: Optional[AttackerProfile] = None,
    ) -> None:
        self._baseline = ecosystem
        self._attacker = attacker if attacker is not None else AttackerProfile.baseline()

    def standard_defenses(self) -> Dict[str, DefenseTransform]:
        """The paper's four proposals as named transforms."""
        return standard_defenses()

    def _service(self, attackers=None):
        from repro.api import AnalysisService

        if attackers is not None:
            return AnalysisService(self._baseline, attackers=dict(attackers))
        return AnalysisService(self._baseline, attacker=self._attacker)

    @staticmethod
    def _register(service, defenses):
        """Register custom transforms; returns the names to query."""
        if defenses is None:
            return None
        for name, transform in defenses.items():
            service.register_defense(name, transform)
        return tuple(defenses)

    def evaluate(
        self,
        defenses: Optional[Mapping[str, DefenseTransform]] = None,
        include_combined: bool = True,
    ) -> Tuple[DefenseOutcome, ...]:
        """Measure the baseline, each defense, and optionally all combined.

        .. deprecated:: delegates to :class:`~repro.api.AnalysisService`.
        """
        from repro.api import DefenseEvalQuery

        warnings.warn(
            "DefenseEvaluation.evaluate is a delegating shim; query "
            "the repro.api.AnalysisService facade (DefenseEvalQuery) "
            "directly",
            DeprecationWarning,
            stacklevel=2,
        )
        service = self._service()
        names = self._register(service, defenses)
        result = service.execute(
            DefenseEvalQuery(
                defenses=names, include_combined=include_combined
            )
        )
        return result.row(service.primary_attacker)

    def evaluate_attackers(
        self,
        attackers: Mapping[str, AttackerProfile],
        defenses: Optional[Mapping[str, DefenseTransform]] = None,
        include_combined: bool = True,
    ) -> Dict[str, Tuple[DefenseOutcome, ...]]:
        """The full attacker-grid ablation: every defense x every profile.

        For each hardened ecosystem variant the stage-1/2 reports and the
        attacker-independent index are built once and shared across all
        attacker profiles, so sweeping profiles costs one pipeline run per
        variant instead of one per cell.  Returns
        ``{attacker label: (baseline, defense..., combined)}`` rows in the
        same order :meth:`evaluate` uses.

        .. deprecated:: delegates to :class:`~repro.api.AnalysisService`.
        """
        from repro.api import DefenseEvalQuery

        warnings.warn(
            "DefenseEvaluation.evaluate_attackers is a delegating shim; query "
            "the repro.api.AnalysisService facade (DefenseEvalQuery) "
            "directly",
            DeprecationWarning,
            stacklevel=2,
        )
        labels = tuple(attackers)
        service = self._service(attackers=attackers)
        names = self._register(service, defenses)
        result = service.execute(
            DefenseEvalQuery(
                defenses=names,
                include_combined=include_combined,
                attackers=labels,
            )
        )
        return {label: result.row(label) for label in labels}

    def evaluate_rollout(
        self,
        steps=None,
        platforms: Tuple[Platform, ...] = (Platform.WEB, Platform.MOBILE),
        include_weak: bool = False,
    ):
        """What-if trajectory of a *staged* deployment (Section VII, but
        gradual): replay ``steps`` over the baseline ecosystem through the
        incremental engine and return the per-step
        :class:`~repro.dynamic.rollout.RolloutTrajectory`.

        The default plan is the paper's narrative order at deployment
        granularity: email hardening one provider at a time, then symmetry
        repair domain by domain.  Each step is absorbed as a delta by the
        live indexes, so an N-step rollout costs N incremental updates --
        not the N full re-measurements :meth:`evaluate` would pay.

        .. deprecated:: delegates to :class:`~repro.api.AnalysisService`.
        """
        from repro.api import RolloutQuery

        warnings.warn(
            "DefenseEvaluation.evaluate_rollout is a delegating shim; query "
            "the repro.api.AnalysisService facade (RolloutQuery) "
            "directly",
            DeprecationWarning,
            stacklevel=2,
        )
        service = self._service()
        return service.execute(
            RolloutQuery(
                steps=tuple(steps) if steps is not None else None,
                platforms=tuple(platforms),
                include_weak=include_weak,
            )
        )


def outcome_rows(
    outcomes: Tuple[DefenseOutcome, ...],
) -> List[Tuple[str, str, str, str, str, str]]:
    """Bench-friendly rows: label, PAV, direct/safe per platform."""
    rows: List[Tuple[str, str, str, str, str, str]] = []
    for outcome in outcomes:
        rows.append(
            (
                outcome.label,
                f"{outcome.pav_size}/{outcome.service_count}",
                f"{100 * outcome.direct_fraction[Platform.WEB]:.1f}%",
                f"{100 * outcome.safe_fraction[Platform.WEB]:.1f}%",
                f"{100 * outcome.direct_fraction[Platform.MOBILE]:.1f}%",
                f"{100 * outcome.safe_fraction[Platform.MOBILE]:.1f}%",
            )
        )
    return rows
