"""Re-measuring the ecosystem under each countermeasure.

The evaluation answers the question Section VII leaves implicit: *how much
attack surface does each proposal actually remove?*  For the baseline,
each single defense, and all defenses combined it reports the
dependency-level fractions and the forward-closure (PAV) size under the
same attacker profile.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.actfort import ActFort
from repro.core.tdg import DependencyLevel
from repro.defense.builtin_auth import BuiltinAuthUpgrade
from repro.defense.hardening import EmailHardening, SymmetryRepair
from repro.defense.masking_policy import UnifiedMaskingPolicy
from repro.model.attacker import AttackerProfile
from repro.model.ecosystem import Ecosystem
from repro.model.factors import Platform

#: A defense is anything that maps an ecosystem to a hardened ecosystem.
DefenseTransform = Callable[[Ecosystem], Ecosystem]


@dataclasses.dataclass(frozen=True)
class DefenseOutcome:
    """Measured attack surface under one defense configuration."""

    label: str
    pav_size: int
    service_count: int
    direct_fraction: Mapping[Platform, float]
    safe_fraction: Mapping[Platform, float]
    dependency: Mapping[Platform, Mapping[DependencyLevel, float]]

    @property
    def pav_fraction(self) -> float:
        """Fraction of services in the potential-victim set."""
        return self.pav_size / max(1, self.service_count)


class DefenseEvaluation:
    """Runs the countermeasure ablation over one baseline ecosystem."""

    def __init__(
        self,
        ecosystem: Ecosystem,
        attacker: Optional[AttackerProfile] = None,
    ) -> None:
        self._baseline = ecosystem
        self._attacker = attacker if attacker is not None else AttackerProfile.baseline()

    def standard_defenses(self) -> Dict[str, DefenseTransform]:
        """The paper's four proposals as named transforms."""
        return {
            "unified_masking": UnifiedMaskingPolicy().apply,
            "email_hardening": EmailHardening().apply,
            "symmetry_repair": SymmetryRepair().apply,
            "builtin_auth": BuiltinAuthUpgrade().apply,
        }

    def evaluate(
        self,
        defenses: Optional[Mapping[str, DefenseTransform]] = None,
        include_combined: bool = True,
    ) -> Tuple[DefenseOutcome, ...]:
        """Measure the baseline, each defense, and optionally all combined."""
        defenses = dict(
            defenses if defenses is not None else self.standard_defenses()
        )
        outcomes: List[DefenseOutcome] = [
            self._measure("baseline", self._baseline)
        ]
        for label, transform in defenses.items():
            outcomes.append(self._measure(label, transform(self._baseline)))
        if include_combined and defenses:
            combined = self._baseline
            for transform in defenses.values():
                combined = transform(combined)
            outcomes.append(self._measure("all_combined", combined))
        return tuple(outcomes)

    def _measure(self, label: str, ecosystem: Ecosystem) -> DefenseOutcome:
        actfort = ActFort.from_ecosystem(ecosystem, attacker=self._attacker)
        tdg = actfort.tdg()
        closure = actfort.potential_victims()
        dependency: Dict[Platform, Mapping[DependencyLevel, float]] = {}
        direct: Dict[Platform, float] = {}
        safe: Dict[Platform, float] = {}
        for platform in (Platform.WEB, Platform.MOBILE):
            fractions = tdg.level_fractions(platform)
            dependency[platform] = fractions
            direct[platform] = fractions[DependencyLevel.DIRECT]
            safe[platform] = fractions[DependencyLevel.SAFE]
        return DefenseOutcome(
            label=label,
            pav_size=len(closure.compromised),
            service_count=len(ecosystem),
            direct_fraction=direct,
            safe_fraction=safe,
            dependency=dependency,
        )


def outcome_rows(
    outcomes: Tuple[DefenseOutcome, ...],
) -> List[Tuple[str, str, str, str, str, str]]:
    """Bench-friendly rows: label, PAV, direct/safe per platform."""
    rows: List[Tuple[str, str, str, str, str, str]] = []
    for outcome in outcomes:
        rows.append(
            (
                outcome.label,
                f"{outcome.pav_size}/{outcome.service_count}",
                f"{100 * outcome.direct_fraction[Platform.WEB]:.1f}%",
                f"{100 * outcome.safe_fraction[Platform.WEB]:.1f}%",
                f"{100 * outcome.direct_fraction[Platform.MOBILE]:.1f}%",
                f"{100 * outcome.safe_fraction[Platform.MOBILE]:.1f}%",
            )
        )
    return rows
