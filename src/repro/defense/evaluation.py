"""Re-measuring the ecosystem under each countermeasure.

The evaluation answers the question Section VII leaves implicit: *how much
attack surface does each proposal actually remove?*  For the baseline,
each single defense, and all defenses combined it reports the
dependency-level fractions and the forward-closure (PAV) size under the
same attacker profile.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.actfort import ActFort
from repro.core.tdg import DependencyLevel
from repro.defense.builtin_auth import BuiltinAuthUpgrade
from repro.defense.hardening import EmailHardening, SymmetryRepair
from repro.defense.masking_policy import UnifiedMaskingPolicy
from repro.model.attacker import AttackerProfile
from repro.model.ecosystem import Ecosystem
from repro.model.factors import Platform

#: A defense is anything that maps an ecosystem to a hardened ecosystem.
DefenseTransform = Callable[[Ecosystem], Ecosystem]


@dataclasses.dataclass(frozen=True)
class DefenseOutcome:
    """Measured attack surface under one defense configuration."""

    label: str
    pav_size: int
    service_count: int
    direct_fraction: Mapping[Platform, float]
    safe_fraction: Mapping[Platform, float]
    dependency: Mapping[Platform, Mapping[DependencyLevel, float]]

    @property
    def pav_fraction(self) -> float:
        """Fraction of services in the potential-victim set."""
        return self.pav_size / max(1, self.service_count)


class DefenseEvaluation:
    """Runs the countermeasure ablation over one baseline ecosystem."""

    def __init__(
        self,
        ecosystem: Ecosystem,
        attacker: Optional[AttackerProfile] = None,
    ) -> None:
        self._baseline = ecosystem
        self._attacker = attacker if attacker is not None else AttackerProfile.baseline()

    def standard_defenses(self) -> Dict[str, DefenseTransform]:
        """The paper's four proposals as named transforms."""
        return {
            "unified_masking": UnifiedMaskingPolicy().apply,
            "email_hardening": EmailHardening().apply,
            "symmetry_repair": SymmetryRepair().apply,
            "builtin_auth": BuiltinAuthUpgrade().apply,
        }

    def evaluate(
        self,
        defenses: Optional[Mapping[str, DefenseTransform]] = None,
        include_combined: bool = True,
    ) -> Tuple[DefenseOutcome, ...]:
        """Measure the baseline, each defense, and optionally all combined."""
        defenses = dict(
            defenses if defenses is not None else self.standard_defenses()
        )
        outcomes: List[DefenseOutcome] = [
            self._measure("baseline", self._baseline)
        ]
        for label, transform in defenses.items():
            outcomes.append(self._measure(label, transform(self._baseline)))
        if include_combined and defenses:
            combined = self._baseline
            for transform in defenses.values():
                combined = transform(combined)
            outcomes.append(self._measure("all_combined", combined))
        return tuple(outcomes)

    def evaluate_attackers(
        self,
        attackers: Mapping[str, AttackerProfile],
        defenses: Optional[Mapping[str, DefenseTransform]] = None,
        include_combined: bool = True,
    ) -> Dict[str, Tuple[DefenseOutcome, ...]]:
        """The full attacker-grid ablation: every defense x every profile.

        For each hardened ecosystem variant the stage-1/2 reports and the
        attacker-independent index are built once and shared across all
        attacker profiles (:meth:`ActFort.batch`), so sweeping profiles
        costs one pipeline run per variant instead of one per cell.
        Returns ``{attacker label: (baseline, defense..., combined)}`` rows
        in the same order :meth:`evaluate` uses.
        """
        defenses = dict(
            defenses if defenses is not None else self.standard_defenses()
        )
        variants: List[Tuple[str, Ecosystem]] = [("baseline", self._baseline)]
        for label, transform in defenses.items():
            variants.append((label, transform(self._baseline)))
        if include_combined and defenses:
            combined = self._baseline
            for transform in defenses.values():
                combined = transform(combined)
            variants.append(("all_combined", combined))
        profile_labels = list(attackers)
        grid: Dict[str, List[DefenseOutcome]] = {
            label: [] for label in profile_labels
        }
        for variant_label, ecosystem in variants:
            base = ActFort.from_ecosystem(ecosystem, attacker=self._attacker)
            clones = base.batch(attackers[label] for label in profile_labels)
            for profile_label, clone in zip(profile_labels, clones):
                grid[profile_label].append(
                    self._measure_actfort(variant_label, clone, len(ecosystem))
                )
        return {label: tuple(row) for label, row in grid.items()}

    def evaluate_rollout(
        self,
        steps=None,
        platforms: Tuple[Platform, ...] = (Platform.WEB, Platform.MOBILE),
        include_weak: bool = False,
    ):
        """What-if trajectory of a *staged* deployment (Section VII, but
        gradual): replay ``steps`` over the baseline ecosystem through the
        incremental engine and return the per-step
        :class:`~repro.dynamic.rollout.RolloutTrajectory`.

        The default plan is the paper's narrative order at deployment
        granularity: email hardening one provider at a time, then symmetry
        repair domain by domain.  Each step is absorbed as a delta by the
        live indexes, so an N-step rollout costs N incremental updates --
        not the N full re-measurements :meth:`evaluate` would pay.
        """
        from repro.dynamic.rollout import (
            RolloutPlanner,
            email_hardening_rollout,
            symmetry_repair_rollout,
        )

        if steps is None:
            # Symmetry targets are computed on the *email-hardened*
            # ecosystem: hardening can itself introduce asymmetries (a
            # strengthened web path can leave mobile strictly weaker), and
            # those must be repaired by the later waves of the same plan.
            steps = email_hardening_rollout(
                self._baseline
            ) + symmetry_repair_rollout(
                EmailHardening().apply(self._baseline)
            )
        planner = RolloutPlanner(
            self._baseline,
            attacker=self._attacker,
            platforms=platforms,
            include_weak=include_weak,
        )
        return planner.replay(steps)

    def _measure(self, label: str, ecosystem: Ecosystem) -> DefenseOutcome:
        actfort = ActFort.from_ecosystem(ecosystem, attacker=self._attacker)
        return self._measure_actfort(label, actfort, len(ecosystem))

    def _measure_actfort(
        self, label: str, actfort: ActFort, service_count: int
    ) -> DefenseOutcome:
        tdg = actfort.tdg()
        closure = actfort.potential_victims()
        # Both platforms consumed through the level engine in one batch,
        # sharing its warm depth fixpoints across the ablation grid.
        dependency: Mapping[Platform, Mapping[DependencyLevel, float]] = (
            tdg.levels_report((Platform.WEB, Platform.MOBILE))
        )
        direct: Dict[Platform, float] = {}
        safe: Dict[Platform, float] = {}
        for platform in (Platform.WEB, Platform.MOBILE):
            fractions = dependency[platform]
            direct[platform] = fractions[DependencyLevel.DIRECT]
            safe[platform] = fractions[DependencyLevel.SAFE]
        return DefenseOutcome(
            label=label,
            pav_size=len(closure.compromised),
            service_count=service_count,
            direct_fraction=direct,
            safe_fraction=safe,
            dependency=dependency,
        )


def outcome_rows(
    outcomes: Tuple[DefenseOutcome, ...],
) -> List[Tuple[str, str, str, str, str, str]]:
    """Bench-friendly rows: label, PAV, direct/safe per platform."""
    rows: List[Tuple[str, str, str, str, str, str]] = []
    for outcome in outcomes:
        rows.append(
            (
                outcome.label,
                f"{outcome.pav_size}/{outcome.service_count}",
                f"{100 * outcome.direct_fraction[Platform.WEB]:.1f}%",
                f"{100 * outcome.safe_fraction[Platform.WEB]:.1f}%",
                f"{100 * outcome.direct_fraction[Platform.MOBILE]:.1f}%",
                f"{100 * outcome.safe_fraction[Platform.MOBILE]:.1f}%",
            )
        )
    return rows
