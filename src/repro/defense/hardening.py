"""Countermeasures 2 and 3: email hardening and platform symmetry repair.

- :class:`EmailHardening` -- "most email service providers ... can be
  attacked by simply resetting password via SMS codes ... we strongly
  recommend that email service providers should bring their authentication
  method to a higher level."  The transform adds a trusted-device check to
  every SMS-only takeover path of email-domain services, so controlling
  the SMS channel alone no longer controls the mailbox.

- :class:`SymmetryRepair` -- "this kind of asymmetry should be avoided by
  developers."  For each service the transform aligns both platforms to
  the *stricter* side: a takeover path offered on one platform is removed
  if the other platform's policy for the same purpose demands strictly
  more factors, and masking rules adopt the platform revealing less.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.model.account import AuthPath, MaskSpec, ServiceProfile
from repro.model.ecosystem import Ecosystem
from repro.model.factors import CredentialFactor, PersonalInfoKind, Platform


@dataclasses.dataclass(frozen=True)
class EmailHardening:
    """Harden the ecosystem's email providers."""

    #: The second factor grafted onto weak email takeover paths.
    added_factor: CredentialFactor = CredentialFactor.TRUSTED_DEVICE
    #: Domain label identifying email providers.
    email_domain: str = "email"

    def apply_to_profile(self, profile: ServiceProfile) -> ServiceProfile:
        """Return a hardened copy (unchanged for non-email services)."""
        if profile.domain != self.email_domain:
            return profile
        hardened_paths: List[AuthPath] = []
        for path in profile.auth_paths:
            if path.is_sms_only:
                hardened_paths.append(
                    dataclasses.replace(
                        path,
                        factors=path.factors | {self.added_factor},
                    )
                )
            else:
                hardened_paths.append(path)
        return dataclasses.replace(profile, auth_paths=tuple(hardened_paths))

    def targets(self, ecosystem: Ecosystem) -> Tuple[str, ...]:
        """Services this transform would actually change, in catalog order.

        The unit of a staged deployment: the rollout planner
        (:mod:`repro.dynamic.rollout`) ships one
        :class:`~repro.dynamic.events.ApplyHardening` mutation per target.
        """
        return tuple(
            profile.name
            for profile in ecosystem
            if self.apply_to_profile(profile) != profile
        )

    def apply(self, ecosystem: Ecosystem) -> Ecosystem:
        """Harden every email provider in the ecosystem."""
        replacements = {
            profile.name: self.apply_to_profile(profile)
            for profile in ecosystem
            if profile.domain == self.email_domain
        }
        return ecosystem.with_services_replaced(replacements)


@dataclasses.dataclass(frozen=True)
class SymmetryRepair:
    """Align each service's platforms to the stricter side."""

    def apply_to_profile(self, profile: ServiceProfile) -> ServiceProfile:
        """Return a copy with cross-platform asymmetries repaired."""
        platforms = profile.platforms
        if len(platforms) < 2:
            return profile
        repaired_paths = self._repair_paths(profile)
        repaired_masks = self._repair_masks(profile)
        return dataclasses.replace(
            profile, auth_paths=repaired_paths, mask_specs=repaired_masks
        )

    def _repair_paths(self, profile: ServiceProfile) -> Tuple[AuthPath, ...]:
        kept: List[AuthPath] = []
        for path in profile.auth_paths:
            other_platforms = profile.platforms - {path.platform}
            strictly_weaker = False
            for other in other_platforms:
                other_paths = profile.paths(platform=other, purpose=path.purpose)
                if not other_paths:
                    continue
                # The path is an asymmetry hole if the other platform's
                # *easiest* path for the same purpose strictly demands more.
                weakest_other = min(
                    (p.factors for p in other_paths), key=len
                )
                if (
                    path.factors < weakest_other
                    or (
                        len(path.factors) < len(weakest_other)
                        and path.is_sms_only
                        and not any(p.is_sms_only for p in other_paths)
                    )
                ):
                    strictly_weaker = True
                    break
            if not strictly_weaker:
                kept.append(path)
        return tuple(kept) if kept else profile.auth_paths

    def _repair_masks(
        self, profile: ServiceProfile
    ) -> Dict[Tuple[Platform, PersonalInfoKind], MaskSpec]:
        """Every platform adopts the mask revealing the fewest positions."""
        repaired: Dict[Tuple[Platform, PersonalInfoKind], MaskSpec] = dict(
            profile.mask_specs
        )
        kinds = {kind for (_p, kind) in profile.mask_specs}
        for kind in kinds:
            candidates = []
            for platform in profile.platforms:
                if kind in profile.info_on(platform):
                    spec = profile.mask_for(platform, kind)
                    length = 18 if kind is PersonalInfoKind.CITIZEN_ID else 16
                    candidates.append(
                        (len(spec.revealed_positions(length)), platform, spec)
                    )
            if not candidates:
                continue
            candidates.sort(key=lambda item: item[0])
            _count, _platform, strictest = candidates[0]
            for platform in profile.platforms:
                if kind in profile.info_on(platform):
                    repaired[(platform, kind)] = strictest
        return repaired

    def targets(self, ecosystem: Ecosystem) -> Tuple[str, ...]:
        """Services whose platforms are actually asymmetric, in catalog
        order (the rollout planner repairs them domain by domain)."""
        return tuple(
            profile.name
            for profile in ecosystem
            if self.apply_to_profile(profile) != profile
        )

    def apply(self, ecosystem: Ecosystem) -> Ecosystem:
        """Repair every dual-platform service."""
        replacements = {
            profile.name: self.apply_to_profile(profile)
            for profile in ecosystem
            if len(profile.platforms) > 1
        }
        return ecosystem.with_services_replaced(replacements)
