"""Countermeasure 4: the built-in OS authentication service of Fig. 8.

The paper proposes a "Post-GSM built-in mobile authentication service":
host applications call a system-level API; the OS vendor's authentication
server pushes an encrypted verification signal to the device over HTTPS;
no code is ever "displayed or saved in places like the message inbox" and
nothing transits GSM.

Two artifacts here:

- :class:`BuiltinAuthService` -- a runtime simulation of the Fig. 8
  protocol (register -> login request -> authorize -> authenticate ->
  verification signal).  Its push channel is the device registry itself:
  there is no radio event, so neither the sniffer nor the fake base
  station ever sees anything to intercept.
- :class:`BuiltinAuthUpgrade` -- the ecosystem transform: enrolled services
  replace SMS codes with the built-in factor, modelled as
  :data:`~repro.model.factors.CredentialFactor.TRUSTED_DEVICE` (possession
  of the enrolled device), which the chain semantics already treat as
  robust.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, List, Optional, Set, Tuple

from repro.model.account import AuthPath, ServiceProfile
from repro.model.ecosystem import Ecosystem
from repro.model.factors import CredentialFactor


@dataclasses.dataclass(frozen=True)
class PushChallenge:
    """One pending authentication push on a device."""

    challenge_id: str
    service: str
    person_id: str
    location_hint: str
    approved: Optional[bool] = None


class BuiltinAuthService:
    """The OS provider's authentication server (Fig. 8).

    The five protocol steps map to methods:

    1. ``register(person_id, device_id)``       -- (1) Register
    2. ``request_login(service, person_id)``    -- (2) Login Request
    3. ``pending_for(person_id, device_id)``    -- the push arriving on-device
    4. ``approve(challenge_id, device_id)``     -- (3)/(4) Authorize+Authenticate
    5. ``verify(challenge_id)``                 -- (5) Verification Signal

    Codes never exist as text; approval is bound to the registered device.
    """

    def __init__(self) -> None:
        self._devices: Dict[str, str] = {}
        self._challenges: Dict[str, PushChallenge] = {}
        self._counter = 0

    def register(self, person_id: str, device_id: str) -> None:
        """Step 1: enroll the user's device with the OS auth server."""
        self._devices[person_id] = device_id

    def is_registered(self, person_id: str) -> bool:
        """Whether the user completed enrollment."""
        return person_id in self._devices

    def request_login(
        self, service: str, person_id: str, location_hint: str = "unknown"
    ) -> str:
        """Step 2: a host application requests authentication.

        Returns the challenge id the service will later verify.  Nothing is
        transmitted over SMS; the push is delivered in-band to the enrolled
        device only.
        """
        if person_id not in self._devices:
            raise KeyError(f"{person_id!r} has no enrolled device")
        self._counter += 1
        challenge_id = hashlib.sha256(
            f"{service}:{person_id}:{self._counter}".encode("utf-8")
        ).hexdigest()[:16]
        self._challenges[challenge_id] = PushChallenge(
            challenge_id=challenge_id,
            service=service,
            person_id=person_id,
            location_hint=location_hint,
        )
        return challenge_id

    def pending_for(
        self, person_id: str, device_id: str
    ) -> Tuple[PushChallenge, ...]:
        """The pushes visible on one device -- and only the enrolled one."""
        if self._devices.get(person_id) != device_id:
            return ()
        return tuple(
            c
            for c in self._challenges.values()
            if c.person_id == person_id and c.approved is None
        )

    def approve(self, challenge_id: str, device_id: str, approve: bool = True) -> None:
        """Steps 3-4: the user authorizes (or rejects) on their device.

        Approval from any device other than the enrolled one is rejected --
        that is the entire security argument of the design.
        """
        challenge = self._challenges.get(challenge_id)
        if challenge is None:
            raise KeyError(f"unknown challenge {challenge_id!r}")
        if self._devices.get(challenge.person_id) != device_id:
            raise PermissionError("approval must come from the enrolled device")
        self._challenges[challenge_id] = dataclasses.replace(
            challenge, approved=approve
        )

    def verify(self, challenge_id: str) -> bool:
        """Step 5: the host application checks the verification signal."""
        challenge = self._challenges.get(challenge_id)
        return challenge is not None and challenge.approved is True


@dataclasses.dataclass(frozen=True)
class BuiltinAuthUpgrade:
    """Ecosystem transform: replace SMS codes with the built-in factor.

    ``adoption`` controls the fraction of services (in name order, which is
    deterministic) that migrate; the paper frames this as an industry
    standard, so the default is full adoption.
    """

    adoption: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.adoption <= 1.0:
            raise ValueError("adoption must be in [0, 1]")

    def apply_to_profile(self, profile: ServiceProfile) -> ServiceProfile:
        """Swap SMS codes for device-bound push auth on every path."""
        upgraded: List[AuthPath] = []
        for path in profile.auth_paths:
            if CredentialFactor.SMS_CODE in path.factors:
                factors = (path.factors - {CredentialFactor.SMS_CODE}) | {
                    CredentialFactor.TRUSTED_DEVICE
                }
                upgraded.append(dataclasses.replace(path, factors=factors))
            else:
                upgraded.append(path)
        return dataclasses.replace(profile, auth_paths=tuple(upgraded))

    def _adopters(self, ecosystem: Ecosystem) -> Set[str]:
        """The adopting fraction of services (in name order, deterministic)."""
        names = sorted(ecosystem.service_names)
        return set(names[: int(round(self.adoption * len(names)))])

    def targets(self, ecosystem: Ecosystem) -> Tuple[str, ...]:
        """Adopting services the upgrade would actually change, in catalog
        order (respects the ``adoption`` fraction exactly like
        :meth:`apply`)."""
        adopters = self._adopters(ecosystem)
        return tuple(
            profile.name
            for profile in ecosystem
            if profile.name in adopters
            and self.apply_to_profile(profile) != profile
        )

    def apply(self, ecosystem: Ecosystem) -> Ecosystem:
        """Migrate the adopting fraction of services."""
        replacements = {
            name: self.apply_to_profile(ecosystem.service(name))
            for name in self._adopters(ecosystem)
        }
        return ecosystem.with_services_replaced(replacements)
