"""Countermeasures (Section VII) and their evaluation.

Each defense is a pure transform from an ecosystem to a hardened copy, so
the evaluation can measure attack-surface deltas without mutating the
baseline:

- :mod:`repro.defense.masking_policy` -- the unified masking standard
  ("cover unified digits on SSN and bankcard numbers"), which kills the
  Insight-4 combining attack.
- :mod:`repro.defense.hardening` -- email-account hardening ("make email
  service accounts more secure") and web/mobile symmetry repair ("tackle
  the asymmetry existing between web end and mobile end").
- :mod:`repro.defense.builtin_auth` -- the built-in OS authentication
  service of Fig. 8, replacing GSM SMS delivery with an encrypted push
  channel the interception rigs cannot touch.
- :mod:`repro.defense.evaluation` -- re-runs the measurement under each
  defense (and all combined) and reports the dependency-level deltas.
"""

from repro.defense.masking_policy import UnifiedMaskingPolicy
from repro.defense.hardening import EmailHardening, SymmetryRepair
from repro.defense.builtin_auth import BuiltinAuthService, BuiltinAuthUpgrade
from repro.defense.evaluation import DefenseEvaluation, DefenseOutcome

__all__ = [
    "BuiltinAuthService",
    "BuiltinAuthUpgrade",
    "DefenseEvaluation",
    "DefenseOutcome",
    "EmailHardening",
    "SymmetryRepair",
    "UnifiedMaskingPolicy",
]
