"""Countermeasure 1: a unified masking standard.

"We propose that all the Internet service providers should cover their
users' sensitive information ... under a unified standard.  By
standardizing user information cover rules, the vulnerability of account
interconnections within the Online Account Ecosystem will be alleviated."

When every provider reveals the *same* character positions, combining
views across providers adds nothing: the union of identical position sets
is the set itself, so a masked value can never be reconstructed from
profile pages alone.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Tuple

from repro.model.account import MaskSpec, ServiceProfile
from repro.model.ecosystem import Ecosystem
from repro.model.factors import PersonalInfoKind, Platform


@dataclasses.dataclass(frozen=True)
class UnifiedMaskingPolicy:
    """Applies one standard mask per sensitive kind, ecosystem-wide.

    The defaults reveal only the last four characters -- enough for the
    user to recognize their own document/card, useless for reconstruction.
    """

    standards: Mapping[PersonalInfoKind, MaskSpec] = dataclasses.field(
        default_factory=lambda: {
            PersonalInfoKind.CITIZEN_ID: MaskSpec(reveal_suffix=4),
            PersonalInfoKind.BANKCARD_NUMBER: MaskSpec(reveal_suffix=4),
        }
    )

    def apply_to_profile(self, profile: ServiceProfile) -> ServiceProfile:
        """Return a copy of ``profile`` with standardized masks.

        Kinds under the standard are masked on *every* platform that
        exposes them -- including platforms that previously showed the full
        value (the Ctrip case).
        """
        mask_specs: Dict[Tuple[Platform, PersonalInfoKind], MaskSpec] = dict(
            profile.mask_specs
        )
        for platform in profile.platforms:
            for kind in profile.info_on(platform):
                if kind in self.standards:
                    mask_specs[(platform, kind)] = self.standards[kind]
                # An ID-card photo is the citizen ID in image form; the
                # unified policy requires blurring it the same way.
                if (
                    kind is PersonalInfoKind.ID_PHOTO
                    and PersonalInfoKind.CITIZEN_ID in self.standards
                ):
                    mask_specs[(platform, kind)] = self.standards[
                        PersonalInfoKind.CITIZEN_ID
                    ]
        return dataclasses.replace(profile, mask_specs=mask_specs)

    def targets(self, ecosystem: Ecosystem) -> Tuple[str, ...]:
        """Services whose masks deviate from the standard, in catalog order
        (the staged-rollout unit for :mod:`repro.dynamic.rollout`)."""
        return tuple(
            profile.name
            for profile in ecosystem
            if self.apply_to_profile(profile) != profile
        )

    def apply(self, ecosystem: Ecosystem) -> Ecosystem:
        """Return a hardened copy of the whole ecosystem."""
        replacements = {
            profile.name: self.apply_to_profile(profile)
            for profile in ecosystem
        }
        return ecosystem.with_services_replaced(replacements)
