"""The ActFort facade: stages 1-4 wired together.

``ActFort`` can run in two modes:

- **profile mode** (:meth:`ActFort.from_ecosystem`) -- analyze static
  service profiles, the fast path the measurement benchmarks use; and
- **probe mode** (:meth:`ActFort.from_internet`) -- actually exercise each
  deployed service with the black-box
  :class:`~repro.websim.crawler.ActFortProbe`, the faithful reproduction of
  the paper's manual test-account workflow.

Both converge on the same stage-1/2 reports, from which the TDG and the
strategy engine are derived.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.core.authproc import AuthenticationProcess, ServiceAuthReport
from repro.core.collection import CollectionReport, PersonalInfoCollection
from repro.core.strategy import AttackChain, ForwardClosureResult, StrategyEngine
from repro.core.tdg import DependencyLevel, TransformationDependencyGraph
from repro.model.attacker import AttackerProfile
from repro.model.ecosystem import Ecosystem
from repro.model.factors import Platform
from repro.websim.crawler import ActFortProbe
from repro.websim.internet import Internet


@dataclasses.dataclass(frozen=True)
class ActFortReport:
    """The combined output of one ActFort run."""

    auth_reports: Mapping[str, ServiceAuthReport]
    collection_reports: Mapping[str, CollectionReport]
    tdg: TransformationDependencyGraph

    def dependency_fractions(
        self, platform: Platform
    ) -> Dict[DependencyLevel, float]:
        """Section IV-B's dependency-level percentages for one platform."""
        return self.tdg.level_fractions(platform)


class ActFort:
    """End-to-end analyzer for one Online Account Ecosystem."""

    def __init__(
        self,
        auth_reports: Mapping[str, ServiceAuthReport],
        collection_reports: Mapping[str, CollectionReport],
        attacker: Optional[AttackerProfile] = None,
    ) -> None:
        self._auth_reports = dict(auth_reports)
        self._collection_reports = dict(collection_reports)
        self._attacker = attacker if attacker is not None else AttackerProfile.baseline()
        self._tdg: Optional[TransformationDependencyGraph] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_ecosystem(
        cls,
        ecosystem: Ecosystem,
        attacker: Optional[AttackerProfile] = None,
    ) -> "ActFort":
        """Analyze static profiles (no live probing)."""
        authproc = AuthenticationProcess()
        collection = PersonalInfoCollection()
        auth_reports = {
            profile.name: authproc.analyze_profile(profile)
            for profile in ecosystem
        }
        collection_reports = {
            profile.name: collection.collect_from_profile(profile)
            for profile in ecosystem
        }
        return cls(auth_reports, collection_reports, attacker)

    @classmethod
    def from_internet(
        cls,
        internet: Internet,
        attacker: Optional[AttackerProfile] = None,
        probe: Optional[ActFortProbe] = None,
    ) -> "ActFort":
        """Analyze by probing every deployed service black-box."""
        probe = probe if probe is not None else ActFortProbe(internet)
        authproc = AuthenticationProcess()
        collection = PersonalInfoCollection()
        auth_reports: Dict[str, ServiceAuthReport] = {}
        collection_reports: Dict[str, CollectionReport] = {}
        for observation in probe.observe_all():
            auth_reports[observation.service] = authproc.analyze_observation(
                observation
            )
            collection_reports[observation.service] = (
                collection.collect_from_observation(observation)
            )
        return cls(auth_reports, collection_reports, attacker)

    # ------------------------------------------------------------------
    # Stage outputs
    # ------------------------------------------------------------------

    @property
    def attacker(self) -> AttackerProfile:
        """The attacker profile the analysis assumes."""
        return self._attacker

    @property
    def auth_reports(self) -> Mapping[str, ServiceAuthReport]:
        """Stage-1 reports by service name."""
        return dict(self._auth_reports)

    @property
    def collection_reports(self) -> Mapping[str, CollectionReport]:
        """Stage-2 reports by service name."""
        return dict(self._collection_reports)

    def tdg(self) -> TransformationDependencyGraph:
        """Stage 3: the Transformation Dependency Graph (cached)."""
        if self._tdg is None:
            self._tdg = TransformationDependencyGraph.from_reports(
                self._auth_reports, self._collection_reports, self._attacker
            )
        return self._tdg

    def strategy(self) -> StrategyEngine:
        """Stage 4: the strategy engine over the TDG."""
        return StrategyEngine(self.tdg())

    def report(self) -> ActFortReport:
        """The combined report object."""
        return ActFortReport(
            auth_reports=dict(self._auth_reports),
            collection_reports=dict(self._collection_reports),
            tdg=self.tdg(),
        )

    # ------------------------------------------------------------------
    # Convenience queries
    # ------------------------------------------------------------------

    def potential_victims(self) -> ForwardClosureResult:
        """Scenario 1 with an empty OAAS: what falls to the profile alone."""
        return self.strategy().forward_closure()

    def attack_chain(
        self,
        target: str,
        platform: Optional[Platform] = None,
        email_provider: Optional[str] = None,
    ) -> Optional[AttackChain]:
        """Scenario 2: a chain ending at ``target``."""
        return self.strategy().attack_chain(
            target, platform=platform, email_provider=email_provider
        )

    def as_service(self):
        """This analysis behind the typed query facade.

        Returns an :class:`~repro.api.AnalysisService` over these
        stage-1/2 reports -- the serving-layer surface with the
        version-keyed result cache and batch planning.
        """
        from repro.api import AnalysisService

        return AnalysisService.from_actfort(self)

    def with_attacker(self, attacker: AttackerProfile) -> "ActFort":
        """Re-analyze the same reports under a different attacker profile."""
        return ActFort(self._auth_reports, self._collection_reports, attacker)

    def batch(
        self, attackers: Iterable[AttackerProfile]
    ) -> Tuple["ActFort", ...]:
        """One analyzer per attacker profile over shared indexes.

        The stage-1/2 reports, the TDG node set and the attacker-independent
        ecosystem index are computed once and shared; each returned analyzer
        carries a pre-built graph that only adds its per-profile
        factor->provider view.  This is the batch entry point the
        measurement study and the defense evaluation use to sweep attacker
        profiles without rebuilding the pipeline per profile.
        """
        profiles = tuple(attackers)
        nodes = TransformationDependencyGraph.nodes_from_reports(
            self._auth_reports, self._collection_reports
        )
        graphs = TransformationDependencyGraph.analyze_many(nodes, profiles)
        clones = []
        for attacker, graph in zip(profiles, graphs):
            clone = ActFort(
                self._auth_reports, self._collection_reports, attacker
            )
            clone._tdg = graph
            clones.append(clone)
        return tuple(clones)
