"""The brute-force reference TDG engine -- the differential-testing oracle.

This is the *seed* implementation of the Transformation Dependency Graph
query layer, kept verbatim: every parent/couple/level query answers by
linearly rescanning all nodes (``itertools.product`` / ``combinations``
enumeration, all-pairs coverage scans).  It is deliberately simple and
obviously faithful to Section III-D / IV-B of the paper, which makes it the
equivalence oracle for the indexed engine in :mod:`repro.core.tdg`:

- ``tests/test_tdg_equivalence.py`` asserts, over seeded catalog ecosystems
  and every attacker-capability profile, that the indexed engine produces
  identical strong/weak edge sets, couple records, coverage splits and
  dependency-level fractions.
- ``benchmarks/test_bench_scaling.py`` times this class against the indexed
  engine to report the old-vs-new trajectory.

Do not optimize this module; its only job is to stay slow and right.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.index import (
    DOSSIER_KINDS,
    DOSSIER_THRESHOLD,
    MASKABLE_FACTORS,
)
from repro.core.tdg import (
    CoupleRecord,
    DependencyLevel,
    PathCoverage,
    TDGNode,
    TransformationDependencyGraph,
    _MAX_DEPTH,
)
from repro.model.account import AuthPath
from repro.model.attacker import AttackerCapability, AttackerProfile
from repro.model.ecosystem import Ecosystem
from repro.model.factors import (
    CredentialFactor,
    PersonalInfoKind,
    Platform,
    factor_satisfied_by_info,
    is_robust_factor,
)


class ReferenceTDG:
    """Seed-semantics TDG: every query is a fresh linear scan."""

    def __init__(
        self,
        nodes: Iterable[TDGNode],
        attacker: AttackerProfile,
    ) -> None:
        self._nodes: Dict[str, TDGNode] = {}
        for node in nodes:
            if node.service in self._nodes:
                raise ValueError(f"duplicate TDG node {node.service!r}")
            self._nodes[node.service] = node
        self._attacker = attacker
        self._innate = attacker.innately_satisfiable()
        self._depth_cache: Optional[Dict[str, int]] = None
        self._pure_full_cache: Optional[Dict[str, int]] = None

    @classmethod
    def from_ecosystem(
        cls, ecosystem: Ecosystem, attacker: AttackerProfile
    ) -> "ReferenceTDG":
        """Build the reference graph from service profiles (node derivation
        is shared with the indexed engine; only the queries differ)."""
        return cls(
            (
                TransformationDependencyGraph.node_from_profile(p)
                for p in ecosystem
            ),
            attacker,
        )

    @property
    def attacker(self) -> AttackerProfile:
        return self._attacker

    @property
    def nodes(self) -> Tuple[TDGNode, ...]:
        return tuple(self._nodes.values())

    def node(self, service: str) -> TDGNode:
        return self._nodes[service]

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    # Factor provisioning semantics (seed scan implementations)
    # ------------------------------------------------------------------

    def innate_factors(self) -> FrozenSet[CredentialFactor]:
        return self._innate

    def coverage(self, node: TDGNode, path: AuthPath) -> PathCoverage:
        innate: Set[CredentialFactor] = set()
        residual: Set[CredentialFactor] = set()
        unsatisfiable: Set[CredentialFactor] = set()
        for factor in path.factors:
            if factor in self._innate:
                innate.add(factor)
            elif is_robust_factor(factor) or factor is CredentialFactor.PASSWORD:
                unsatisfiable.add(factor)
            elif self._providers_of(factor, path):
                residual.add(factor)
            elif self._combinable(factor, path, self._all_names()):
                residual.add(factor)
            elif factor is CredentialFactor.CUSTOMER_SERVICE and (
                AttackerCapability.SOCIAL_ENGINEERING in self._attacker.capabilities
            ):
                residual.add(factor)
            else:
                unsatisfiable.add(factor)
        return PathCoverage(
            path=path,
            innate=frozenset(innate),
            residual=frozenset(residual),
            unsatisfiable=frozenset(unsatisfiable),
        )

    def provides(
        self, provider: TDGNode, factor: CredentialFactor, path: AuthPath
    ) -> bool:
        if is_robust_factor(factor) or factor is CredentialFactor.PASSWORD:
            return False
        if factor in (CredentialFactor.EMAIL_CODE, CredentialFactor.EMAIL_LINK):
            return (
                PersonalInfoKind.MAILBOX_ACCESS in provider.pia
                and AttackerCapability.EMAIL_CHANNEL_AFTER_COMPROMISE
                in self._attacker.capabilities
            )
        if factor is CredentialFactor.LINKED_ACCOUNT:
            return provider.service in path.linked_providers
        if factor is CredentialFactor.CUSTOMER_SERVICE:
            if (
                AttackerCapability.SOCIAL_ENGINEERING
                not in self._attacker.capabilities
            ):
                return False
            return len(provider.pia & DOSSIER_KINDS) >= DOSSIER_THRESHOLD
        return factor_satisfied_by_info(factor, provider.pia)

    def _providers_of(
        self, factor: CredentialFactor, path: AuthPath
    ) -> Tuple[TDGNode, ...]:
        return tuple(
            node
            for node in self._nodes.values()
            if node.service != path.service and self.provides(node, factor, path)
        )

    def _all_names(self) -> FrozenSet[str]:
        return frozenset(self._nodes)

    def partial_positions(
        self, provider: TDGNode, factor: CredentialFactor
    ) -> FrozenSet[int]:
        maskable = MASKABLE_FACTORS.get(factor)
        if maskable is None:
            return frozenset()
        kind, _length = maskable
        return provider.pia_partial.get(kind, frozenset())

    def _combinable(
        self,
        factor: CredentialFactor,
        path: AuthPath,
        pool: FrozenSet[str],
    ) -> bool:
        maskable = MASKABLE_FACTORS.get(factor)
        if maskable is None:
            return False
        _kind, length = maskable
        union: Set[int] = set()
        for name in pool:
            if name == path.service:
                continue
            union |= self.partial_positions(self._nodes[name], factor)
            if len(union) >= length:
                return True
        return False

    def _pool_provides(
        self,
        factor: CredentialFactor,
        path: AuthPath,
        pool: FrozenSet[str],
    ) -> bool:
        for name in pool:
            if name == path.service:
                continue
            if self.provides(self._nodes[name], factor, path):
                return True
        return self._combinable(factor, path, pool)

    # ------------------------------------------------------------------
    # Definitions 1-3: parents and couples (all-pairs scans)
    # ------------------------------------------------------------------

    def full_capacity_parents(self, service: str) -> FrozenSet[str]:
        node = self._nodes[service]
        parents: Set[str] = set()
        for path in node.takeover_paths:
            cover = self.coverage(node, path)
            if cover.is_blocked or not cover.residual:
                continue
            for candidate in self._nodes.values():
                if candidate.service == service:
                    continue
                if all(
                    self.provides(candidate, factor, path)
                    for factor in cover.residual
                ):
                    parents.add(candidate.service)
        return frozenset(parents)

    def half_capacity_parents(self, service: str) -> FrozenSet[str]:
        node = self._nodes[service]
        halves: Set[str] = set()
        for path in node.takeover_paths:
            cover = self.coverage(node, path)
            if cover.is_blocked or not cover.residual:
                continue
            for candidate in self._nodes.values():
                if candidate.service == service:
                    continue
                provided = {
                    factor
                    for factor in cover.residual
                    if self.provides(candidate, factor, path)
                }
                if provided and provided != cover.residual:
                    halves.add(candidate.service)
        return frozenset(halves)

    def couples(self, service: str, max_size: int = 3) -> Tuple[CoupleRecord, ...]:
        node = self._nodes[service]
        records: List[CoupleRecord] = []
        seen: Set[Tuple[FrozenSet[str], AuthPath]] = set()
        for path in node.takeover_paths:
            cover = self.coverage(node, path)
            if cover.is_blocked or not cover.residual:
                continue
            per_factor: Dict[CredentialFactor, Tuple[FrozenSet[str], ...]] = {}
            feasible = True
            for factor in cover.residual:
                options: List[FrozenSet[str]] = [
                    frozenset({p.service})
                    for p in self._providers_of(factor, path)
                ]
                options.extend(self._combining_sets(factor, path))
                if not options:
                    feasible = False
                    break
                per_factor[factor] = tuple(options)
            if not feasible:
                continue
            factors = sorted(per_factor, key=lambda f: f.value)
            for combo in itertools.product(*(per_factor[f] for f in factors)):
                members: FrozenSet[str] = frozenset().union(*combo)
                if len(members) < 2 or len(members) > max_size:
                    continue
                if self._has_redundant_member(members, cover, path):
                    continue
                key = (members, path)
                if key in seen:
                    continue
                seen.add(key)
                records.append(
                    CoupleRecord(providers=members, target=service, path=path)
                )
        return tuple(records)

    def _combining_sets(
        self, factor: CredentialFactor, path: AuthPath, max_size: int = 3
    ) -> List[FrozenSet[str]]:
        maskable = MASKABLE_FACTORS.get(factor)
        if maskable is None:
            return []
        _kind, length = maskable
        holders = [
            (node.service, self.partial_positions(node, factor))
            for node in self._nodes.values()
            if node.service != path.service
            and self.partial_positions(node, factor)
        ]
        results: List[FrozenSet[str]] = []
        for size in (2, 3):
            if size > max_size:
                break
            for combo in itertools.combinations(holders, size):
                union: FrozenSet[int] = frozenset().union(
                    *(positions for _n, positions in combo)
                )
                if len(union) < length:
                    continue
                members = frozenset(name for name, _p in combo)
                if any(
                    len(
                        frozenset().union(
                            *(p for n, p in combo if n != skip)
                        )
                    )
                    >= length
                    for skip, _ in combo
                ):
                    continue
                if any(existing <= members for existing in results):
                    continue
                results.append(members)
        return results

    def _has_redundant_member(
        self,
        members: FrozenSet[str],
        cover: PathCoverage,
        path: AuthPath,
    ) -> bool:
        for member in members:
            rest = members - {member}
            if all(
                self._pool_provides(factor, path, rest)
                for factor in cover.residual
            ):
                return True
        return False

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------

    def strong_edges(self) -> FrozenSet[Tuple[str, str]]:
        edges: Set[Tuple[str, str]] = set()
        for service in self._nodes:
            for parent in self.full_capacity_parents(service):
                edges.add((parent, service))
        return frozenset(edges)

    def weak_edges(self) -> FrozenSet[Tuple[str, str]]:
        edges: Set[Tuple[str, str]] = set()
        for service in self._nodes:
            for record in self.couples(service):
                for provider in record.providers:
                    edges.add((provider, service))
        return frozenset(edges)

    # ------------------------------------------------------------------
    # Dependency levels
    # ------------------------------------------------------------------

    def is_direct(
        self, service: str, platform: Optional[Platform] = None
    ) -> bool:
        node = self._nodes[service]
        return any(
            self.coverage(node, path).is_direct
            for path in node.paths_on(platform)
        )

    def _depths(self) -> Dict[str, int]:
        if self._depth_cache is not None:
            return self._depth_cache
        depths: Dict[str, int] = {}
        for service in self._nodes:
            if self.is_direct(service):
                depths[service] = 0
        for depth in range(1, _MAX_DEPTH + 1):
            pool = frozenset(
                name for name, d in depths.items() if d < depth
            )
            changed = False
            for service, node in self._nodes.items():
                if service in depths:
                    continue
                if self._coverable_by(node, pool):
                    depths[service] = depth
                    changed = True
            if not changed:
                break
        self._depth_cache = depths
        return depths

    def _coverable_by(self, node: TDGNode, pool: FrozenSet[str]) -> bool:
        for path in node.takeover_paths:
            cover = self.coverage(node, path)
            if cover.is_blocked:
                continue
            if all(
                self._pool_provides(factor, path, pool)
                for factor in cover.residual
            ):
                return True
        return False

    def _pure_full_depths(self) -> Dict[str, int]:
        if self._pure_full_cache is not None:
            return self._pure_full_cache
        depths: Dict[str, int] = {}
        for service in self._nodes:
            if self.is_direct(service):
                depths[service] = 0
        parents: Dict[str, FrozenSet[str]] = {
            service: self.full_capacity_parents(service)
            for service in self._nodes
        }
        for depth in range(1, _MAX_DEPTH + 1):
            changed = False
            for service in self._nodes:
                if service in depths:
                    continue
                best = min(
                    (
                        depths[parent]
                        for parent in parents[service]
                        if parent in depths
                    ),
                    default=None,
                )
                if best is not None and best < depth:
                    depths[service] = best + 1
                    changed = True
            if not changed:
                break
        self._pure_full_cache = depths
        return depths

    def dependency_levels(
        self, platform: Platform
    ) -> Dict[str, FrozenSet[DependencyLevel]]:
        pure_full = self._pure_full_depths()
        depths = self._depths()
        joint_pool_1 = frozenset(
            name for name, d in depths.items() if d <= 1
        )
        full_pool = frozenset(depths)
        result: Dict[str, FrozenSet[DependencyLevel]] = {}
        for service, node in self._nodes.items():
            paths = node.paths_on(platform)
            if not paths:
                continue
            levels: Set[DependencyLevel] = set()
            for path in paths:
                cover = self.coverage(node, path)
                if cover.is_blocked:
                    continue
                if cover.is_direct:
                    levels.add(DependencyLevel.DIRECT)
                    continue
                full_parent_depths = [
                    pure_full[p.service]
                    for p in self._path_full_parents(node, path, cover)
                    if p.service in pure_full
                ]
                if any(d == 0 for d in full_parent_depths):
                    levels.add(DependencyLevel.ONE_LAYER)
                elif any(d == 1 for d in full_parent_depths):
                    levels.add(DependencyLevel.TWO_LAYER_FULL)
                elif self._jointly_coverable(node, path, cover, joint_pool_1):
                    levels.add(DependencyLevel.TWO_LAYER_MIXED)
            if not levels:
                if self._platform_reachable(node, paths, full_pool):
                    levels.add(DependencyLevel.TWO_LAYER_MIXED)
                else:
                    levels.add(DependencyLevel.SAFE)
            result[service] = frozenset(levels)
        return result

    def _platform_reachable(
        self,
        node: TDGNode,
        paths: Tuple[AuthPath, ...],
        pool: FrozenSet[str],
    ) -> bool:
        pool = pool - {node.service}
        for path in paths:
            cover = self.coverage(node, path)
            if cover.is_blocked:
                continue
            if all(
                self._pool_provides(factor, path, pool)
                for factor in cover.residual
            ):
                return True
        return False

    def _path_full_parents(
        self, node: TDGNode, path: AuthPath, cover: PathCoverage
    ) -> Tuple[TDGNode, ...]:
        return tuple(
            candidate
            for candidate in self._nodes.values()
            if candidate.service != node.service
            and all(
                self.provides(candidate, factor, path)
                for factor in cover.residual
            )
        )

    def _jointly_coverable(
        self,
        node: TDGNode,
        path: AuthPath,
        cover: PathCoverage,
        pool: FrozenSet[str],
    ) -> bool:
        pool = pool - {node.service}
        return bool(cover.residual) and all(
            self._pool_provides(factor, path, pool)
            for factor in cover.residual
        )

    def level_fractions(
        self, platform: Platform
    ) -> Dict[DependencyLevel, float]:
        levels = self.dependency_levels(platform)
        if not levels:
            raise ValueError(f"no services on {platform}")
        n = len(levels)
        return {
            level: sum(1 for ls in levels.values() if level in ls) / n
            for level in DependencyLevel
        }

    def fringe_nodes(self) -> FrozenSet[str]:
        return frozenset(
            service for service in self._nodes if self.is_direct(service)
        )
