"""ActFort stage 1: the Authentication Process.

For each online account the stage "collect[s] and analyze[s] the
registration requirement ... then collect[s] and trace[s] the credential
factors to construct the Authentication flow in each signup approach
recursively" (Section III-B).  The flow construction is top-down: the
source is a target action (sign-in, password reset, payment), each path
under it lists the credential factors it demands, and factors that are
themselves obtained through another authentication (an email code requires
control of the email account) recurse one level further.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Tuple

from repro.model.account import AuthPath, AuthPurpose, PathType, ServiceProfile
from repro.model.factors import CredentialFactor, Platform
from repro.websim.crawler import ProbeObservation


@dataclasses.dataclass(frozen=True)
class AuthFlowNode:
    """One node of the recursive authentication-flow tree.

    ``requirement`` is either a credential factor or a sub-action label
    (e.g. ``"control(email account)"``); ``children`` are the requirements
    one layer further down.
    """

    requirement: str
    factor: Optional[CredentialFactor]
    children: Tuple["AuthFlowNode", ...] = ()

    def depth(self) -> int:
        """Height of the subtree rooted here (a leaf has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def leaves(self) -> Tuple["AuthFlowNode", ...]:
        """All leaf requirements under this node."""
        if not self.children:
            return (self,)
        result: List[AuthFlowNode] = []
        for child in self.children:
            result.extend(child.leaves())
        return tuple(result)


@dataclasses.dataclass(frozen=True)
class AuthFlow:
    """The flow tree for one (platform, purpose) source action."""

    service: str
    platform: Platform
    purpose: AuthPurpose
    paths: Tuple[AuthPath, ...]
    root: AuthFlowNode


@dataclasses.dataclass(frozen=True)
class ServiceAuthReport:
    """Stage-1 output for one service."""

    service: str
    domain: str
    flows: Tuple[AuthFlow, ...]
    #: Distinct credential-factor signatures across all paths; this is the
    #: per-service contribution to the paper's "405 authentication paths".
    distinct_path_signatures: int

    def paths(self) -> Tuple[AuthPath, ...]:
        """All paths across all flows."""
        result: List[AuthPath] = []
        for flow in self.flows:
            result.extend(flow.paths)
        return tuple(result)

    def path_type_counts(
        self, platform: Optional[Platform] = None
    ) -> Dict[PathType, int]:
        """Histogram of path types, optionally for one platform."""
        counts: Dict[PathType, int] = {t: 0 for t in PathType}
        for path in self.paths():
            if platform is not None and path.platform is not platform:
                continue
            counts[path.path_type] += 1
        return counts

    def has_sms_only_path(
        self,
        platform: Optional[Platform] = None,
        purpose: Optional[AuthPurpose] = None,
    ) -> bool:
        """Whether any (filtered) path needs only phone + SMS code."""
        for path in self.paths():
            if platform is not None and path.platform is not platform:
                continue
            if purpose is not None and path.purpose is not purpose:
                continue
            if path.is_sms_only:
                return True
        return False


class AuthenticationProcess:
    """Builds :class:`ServiceAuthReport` objects from profiles or probes."""

    def analyze_profile(self, profile: ServiceProfile) -> ServiceAuthReport:
        """Analyze a service from its static profile."""
        return self._analyze(
            profile.name, profile.domain, profile.auth_paths
        )

    def analyze_observation(
        self, observation: ProbeObservation
    ) -> ServiceAuthReport:
        """Analyze a service from a black-box probe observation."""
        return self._analyze(
            observation.service, observation.domain, observation.paths
        )

    def _analyze(
        self, service: str, domain: str, paths: Tuple[AuthPath, ...]
    ) -> ServiceAuthReport:
        flows: List[AuthFlow] = []
        grouped: Dict[Tuple[Platform, AuthPurpose], List[AuthPath]] = {}
        for path in paths:
            grouped.setdefault((path.platform, path.purpose), []).append(path)
        for (platform, purpose), group in sorted(
            grouped.items(), key=lambda item: (item[0][0].value, item[0][1].value)
        ):
            root = self._build_flow_tree(service, platform, purpose, group)
            flows.append(
                AuthFlow(
                    service=service,
                    platform=platform,
                    purpose=purpose,
                    paths=tuple(group),
                    root=root,
                )
            )
        signatures = {path.factors for path in paths}
        return ServiceAuthReport(
            service=service,
            domain=domain,
            flows=tuple(flows),
            distinct_path_signatures=len(signatures),
        )

    def _build_flow_tree(
        self,
        service: str,
        platform: Platform,
        purpose: AuthPurpose,
        paths: List[AuthPath],
    ) -> AuthFlowNode:
        path_nodes: List[AuthFlowNode] = []
        for index, path in enumerate(paths, start=1):
            factor_nodes = tuple(
                self._factor_node(factor, path)
                for factor in sorted(path.factors, key=lambda f: f.value)
            )
            path_nodes.append(
                AuthFlowNode(
                    requirement=f"path_{index}({path.describe()})",
                    factor=None,
                    children=factor_nodes,
                )
            )
        return AuthFlowNode(
            requirement=f"{service}:{purpose.value}[{platform.value}]",
            factor=None,
            children=tuple(path_nodes),
        )

    def _factor_node(
        self, factor: CredentialFactor, path: AuthPath
    ) -> AuthFlowNode:
        """Recurse one layer: factors that are themselves gated on another
        authentication grow children naming the sub-action."""
        if factor in (CredentialFactor.EMAIL_CODE, CredentialFactor.EMAIL_LINK):
            child = AuthFlowNode(
                requirement="control(email account)", factor=None
            )
            return AuthFlowNode(
                requirement=factor.value, factor=factor, children=(child,)
            )
        if factor is CredentialFactor.LINKED_ACCOUNT:
            providers = ", ".join(sorted(path.linked_providers)) or "any provider"
            child = AuthFlowNode(
                requirement=f"control(linked account: {providers})", factor=None
            )
            return AuthFlowNode(
                requirement=factor.value, factor=factor, children=(child,)
            )
        if factor is CredentialFactor.SMS_CODE:
            child = AuthFlowNode(
                requirement="access(SMS channel)", factor=None
            )
            return AuthFlowNode(
                requirement=factor.value, factor=factor, children=(child,)
            )
        return AuthFlowNode(requirement=factor.value, factor=factor)


def aggregate_path_statistics(
    reports: Mapping[str, ServiceAuthReport], platform: Platform
) -> Dict[str, float]:
    """Ecosystem-level Fig. 3 statistics for one platform.

    Returns fractions over the services that exist on ``platform``:
    SMS-only sign-in, SMS-only reset, any path using SMS, extra-info-needed,
    plus path-type shares over *paths*.
    """
    on_platform = [
        r
        for r in reports.values()
        if any(p.platform is platform for p in r.paths())
    ]
    if not on_platform:
        raise ValueError(f"no services on platform {platform}")
    n = len(on_platform)

    def frac(predicate) -> float:
        return sum(1 for r in on_platform if predicate(r)) / n

    sms_signin = frac(
        lambda r: r.has_sms_only_path(platform, AuthPurpose.SIGN_IN)
    )
    sms_reset = frac(
        lambda r: r.has_sms_only_path(platform, AuthPurpose.PASSWORD_RESET)
    )
    uses_sms = frac(
        lambda r: any(
            CredentialFactor.SMS_CODE in p.factors
            for p in r.paths()
            if p.platform is platform
        )
    )
    extra_info = frac(
        lambda r: all(
            p.path_type is not PathType.GENERAL
            for p in r.paths()
            if p.platform is platform
        )
    )

    type_counts: Dict[PathType, int] = {t: 0 for t in PathType}
    total_paths = 0
    for report in on_platform:
        for path in report.paths():
            if path.platform is not platform:
                continue
            type_counts[path.path_type] += 1
            total_paths += 1
    return {
        "services": float(n),
        "sms_only_signin": sms_signin,
        "sms_only_reset": sms_reset,
        "uses_sms_anywhere": uses_sms,
        "extra_info_required": extra_info,
        "general_share": type_counts[PathType.GENERAL] / total_paths,
        "info_share": type_counts[PathType.INFO] / total_paths,
        "unique_share": type_counts[PathType.UNIQUE] / total_paths,
        "total_paths": float(total_paths),
    }
