"""ActFort -- the paper's primary contribution.

Four stages, mirroring Fig. 2's flowchart:

1. :mod:`repro.core.authproc` -- the **Authentication Process**: enumerate
   every sign-in / password-reset path and its credential factors, and
   build the recursive authentication-flow tree per service.
2. :mod:`repro.core.collection` -- **Personal Information Collection**:
   classify what each logged-in account exposes into the paper's five
   categories, tracking masking completeness.
3. :mod:`repro.core.tdg` -- **Transformation Dependency Graph** generation:
   nodes carry credential-factor attributes (CFA) and personal-information
   attributes (PIA); edges encode who can provide whose factors, with
   strong/weak directivity, full/half-capacity parents and couple nodes.
4. :mod:`repro.core.strategy` -- **Strategy Output**: the forward closure
   (initially compromised accounts -> every reachable account) and the
   backward chain search (target account -> attack chain rooted at
   phone + SMS code).

:mod:`repro.core.actfort` wires the stages into one facade.

Stage 3 runs on the inverted-index engine of :mod:`repro.core.index`:
an attacker-independent :class:`~repro.core.index.EcosystemIndex`
(info kind -> holders, masked-view holders per maskable factor) plus a
per-profile :class:`~repro.core.index.AttackerIndex` (credential factor ->
providers), with path coverages and dependency-level fixpoints memoized
per graph.  ``TransformationDependencyGraph.analyze_many`` and
``ActFort.batch`` share one ecosystem index across many attacker profiles
for measurement sweeps and defense ablations.  The seed's brute-force
scanning engine survives verbatim in :mod:`repro.core.reference` as the
differential-testing oracle (``tests/test_tdg_equivalence.py``).
"""

from repro.core.authproc import AuthenticationProcess, AuthFlow, AuthFlowNode, ServiceAuthReport
from repro.core.collection import CollectionReport, PersonalInfoCollection
from repro.core.index import AttackerIndex, EcosystemIndex
from repro.core.reference import ReferenceTDG
from repro.core.tdg import (
    CoupleRecord,
    DependencyLevel,
    PathCoverage,
    TDGNode,
    TransformationDependencyGraph,
)
from repro.core.strategy import (
    AttackChain,
    ChainStep,
    ForwardClosureResult,
    StrategyEngine,
)
from repro.core.actfort import ActFort, ActFortReport

__all__ = [
    "ActFort",
    "ActFortReport",
    "AttackChain",
    "AttackerIndex",
    "AuthFlow",
    "AuthFlowNode",
    "AuthenticationProcess",
    "ChainStep",
    "CollectionReport",
    "CoupleRecord",
    "DependencyLevel",
    "EcosystemIndex",
    "ForwardClosureResult",
    "PathCoverage",
    "PersonalInfoCollection",
    "ReferenceTDG",
    "ServiceAuthReport",
    "StrategyEngine",
    "TDGNode",
    "TransformationDependencyGraph",
]
