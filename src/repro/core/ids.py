"""The compact id-space: interned integer ids and bitset postings.

Everything hot in the indexed engine -- provider/demander/linked/holder
postings in :mod:`repro.core.index`, the per-signature parent member
sets of :mod:`repro.levels.parents`, the depth fixpoint's dirty cones
and bucket scans in :mod:`repro.levels.engine` -- is set algebra over
*names*: frozensets of ``str`` service names and
:class:`~repro.model.factors.CredentialFactor` members.  At the
10k-30k service tiers those objects dominate both time (hashing
strings per membership test) and memory (one boxed string reference
per posting entry).

This module interns the three hot key spaces onto dense integers so
the postings can live as **int bitmasks** (Python's arbitrary-width
ints are C-speed bitsets: union is ``|``, intersection ``&``,
cardinality ``int.bit_count``):

- service names -> :class:`Interner` ids, which *are* the monotone
  insertion ordinals of :class:`~repro.core.index.EcosystemIndex`
  (additions always receive a fresh maximum id, removals retire the id
  forever, so iterating a bitmask's set bits low-to-high reproduces
  graph insertion order at any version -- the contract the stream
  cursors of :mod:`repro.streams` watermark against);
- residual-factor signatures (frozensets of factors) ->
  :class:`SignatureInterner` ids, keying the parent member-set
  postings and the factor -> signatures reverse index;
- :class:`~repro.model.factors.CredentialFactor` members ->
  :data:`FACTOR_IDS` (a fixed enum-order table; factors are never
  retired), so a signature also has a canonical *factor bitmask*.

The frozenset-of-names query API of the index layers is preserved as
thin decoding views over these masks; ``tests/test_ids.py`` pins the
interner lifecycle (retire-on-remove, fresh-max on re-add,
decode-after-retire) with Hypothesis mutation sequences and
``tests/test_dynamic_equivalence.py`` locks the mask-backed postings
bit-for-bit against scratch rebuilds.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Generic,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    TypeVar,
)

from repro.model.factors import CredentialFactor

__all__ = [
    "FACTOR_IDS",
    "FACTOR_OF_ID",
    "Interner",
    "SignatureInterner",
    "decode_ids",
    "factor_mask",
    "factors_from_mask",
    "iter_ids",
    "mask_of",
]

KeyT = TypeVar("KeyT", bound=Hashable)

#: factor -> dense id, in enum definition order.  Factors are a closed
#: space (no retirement); the id doubles as the bit position of the
#: factor in a signature's factor bitmask.
FACTOR_IDS: Mapping[CredentialFactor, int] = {
    factor: position for position, factor in enumerate(CredentialFactor)
}

#: The decoding table of :data:`FACTOR_IDS`.
FACTOR_OF_ID: Tuple[CredentialFactor, ...] = tuple(CredentialFactor)


def factor_mask(factors: Iterable[CredentialFactor]) -> int:
    """The factor bitmask of a signature (bit ``FACTOR_IDS[f]`` per
    member)."""
    mask = 0
    for factor in factors:
        mask |= 1 << FACTOR_IDS[factor]
    return mask


def factors_from_mask(mask: int) -> FrozenSet[CredentialFactor]:
    """Decode a factor bitmask back to the signature frozenset."""
    return frozenset(FACTOR_OF_ID[position] for position in iter_ids(mask))


def mask_of(ids: Iterable[int]) -> int:
    """The bitmask with exactly the given bit positions set."""
    mask = 0
    for position in ids:
        mask |= 1 << position
    return mask


def iter_ids(mask: int) -> Iterator[int]:
    """Set bit positions of ``mask``, lowest first.

    For service-id masks lowest-first *is* graph insertion order
    (ids are monotone insertion ordinals), which is what lets the
    decoding views reproduce the enumeration order of the seed's
    linear scans without keeping parallel ordered tuples.
    """
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class Interner(Generic[KeyT]):
    """Dense monotone integer ids for hashable keys, with retirement.

    The id contract mirrors the monotone ordinal contract of
    :meth:`repro.core.index.EcosystemIndex.ordinal_of`:

    - :meth:`intern` assigns ids ``0, 1, 2, ...`` in first-intern order
      and is idempotent while the key is live;
    - :meth:`retire` retires a key's id **forever** -- re-interning the
      same key later assigns a fresh maximum id, never resurrects the
      old one;
    - :meth:`decode` keeps answering for retired ids (the decode table
      is append-only), so a historic mask or cursor watermark can
      always be rendered back to names.

    ``len()`` counts live keys; :attr:`high_water` is the total number
    of ids ever assigned (the width the bitmasks grow toward).
    """

    __slots__ = ("_ids", "_keys", "_latest")

    def __init__(self, keys: Iterable[KeyT] = ()) -> None:
        #: key -> live id (retired keys are absent).
        self._ids: Dict[KeyT, int] = {}
        #: id -> key, append-only (retired ids still decode).
        self._keys: List[KeyT] = []
        #: key -> most recent id ever assigned (survives retirement, so a
        #: maintenance pass that runs *after* a removal retired the id can
        #: still clear the right posting bits).
        self._latest: Dict[KeyT, int] = {}
        for key in keys:
            self.intern(key)

    def intern(self, key: KeyT) -> int:
        """The key's live id, assigning a fresh maximum if absent."""
        existing = self._ids.get(key)
        if existing is not None:
            return existing
        assigned = len(self._keys)
        self._ids[key] = assigned
        self._keys.append(key)
        self._latest[key] = assigned
        return assigned

    def id_of(self, key: KeyT) -> int:
        """The key's live id (``KeyError`` when never interned or
        retired)."""
        return self._ids[key]

    def get(self, key: KeyT) -> Optional[int]:
        """The key's live id, or ``None``."""
        return self._ids.get(key)

    def decode(self, assigned: int) -> KeyT:
        """The key an id was assigned to (works for retired ids too)."""
        return self._keys[assigned]

    def retire(self, key: KeyT) -> int:
        """Retire the key's id forever; returns the retired id."""
        return self._ids.pop(key)

    def latest_id(self, key: KeyT) -> int:
        """The most recent id ever assigned to the key, live or retired
        (``KeyError`` when never interned)."""
        return self._latest[key]

    def __contains__(self, key: object) -> bool:
        return key in self._ids

    def __len__(self) -> int:
        return len(self._ids)

    @property
    def high_water(self) -> int:
        """Total ids ever assigned (bitmask width; never shrinks)."""
        return len(self._keys)

    def live_mask(self) -> int:
        """The bitmask of every live id."""
        return mask_of(self._ids.values())

    def decode_mask(self, mask: int) -> FrozenSet[str]:
        """Decode a bitmask of ids to the frozenset of keys."""
        keys = self._keys
        return frozenset(keys[position] for position in iter_ids(mask))

    def decode_mask_ordered(self, mask: int) -> Tuple[KeyT, ...]:
        """Decode a bitmask to keys in id (= first-intern) order."""
        keys = self._keys
        return tuple(keys[position] for position in iter_ids(mask))

    def encode(self, keys: Iterable[KeyT]) -> int:
        """The bitmask of the keys' live ids (all must be live)."""
        ids = self._ids
        mask = 0
        for key in keys:
            mask |= 1 << ids[key]
        return mask

    def encode_live(self, keys: Iterable[KeyT]) -> int:
        """Like :meth:`encode`, silently skipping non-live keys."""
        ids = self._ids
        mask = 0
        for key in keys:
            position = ids.get(key)
            if position is not None:
                mask |= 1 << position
        return mask


class SignatureInterner(Interner[FrozenSet[CredentialFactor]]):
    """An :class:`Interner` over residual-factor signatures.

    Adds the factor -> signature-id reverse postings the retraction
    path of :class:`~repro.levels.parents.SignatureParentsView` scans:
    ``containing(factor)`` is a bitmask over *signature ids*, so
    "every signature containing an affected factor" is a union of a
    few masks instead of a subset test per cached signature.
    """

    __slots__ = ("_containing",)

    def __init__(self) -> None:
        super().__init__()
        self._containing: Dict[CredentialFactor, int] = {}

    def intern(self, key: FrozenSet[CredentialFactor]) -> int:
        fresh = key not in self._ids
        assigned = super().intern(key)
        if fresh:
            bit = 1 << assigned
            for factor in key:
                self._containing[factor] = self._containing.get(factor, 0) | bit
        return assigned

    def containing(self, factor: CredentialFactor) -> int:
        """Bitmask of signature ids whose signature contains ``factor``
        (retired ids included; callers intersect with their live
        entries)."""
        return self._containing.get(factor, 0)


def decode_ids(interner: Interner[KeyT], mask: int) -> FrozenSet[KeyT]:
    """Module-level alias of :meth:`Interner.decode_mask` (reads better
    at call sites that only hold the interner)."""
    return interner.decode_mask(mask)
