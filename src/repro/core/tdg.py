"""ActFort stage 3: Transformation Dependency Graph generation.

Each node is an online account with a credential-factor attribute (CFA --
its takeover paths) and a personal-information attribute (PIA -- what it
exposes once controlled).  An edge ``u -> v`` exists when information from
``u`` satisfies credential factors of ``v`` under a given attacker profile
(Section III-D):

- ``u`` is a **full capacity parent** of ``v`` (Definition 1, a
  *strong-directivity* edge) when ``u`` alone provides every factor of at
  least one of ``v``'s paths (beyond what the attacker profile supplies).
- ``u`` is a **half capacity parent** (Definition 2) when it provides some
  but not all of a path's factors.
- Nodes that *jointly* cover a path are **couple nodes** (Definition 3,
  *weak-directivity* edges); the tuples are recorded in the Couple File.

On top of the raw graph the module computes the paper's dependency-level
statistics (Section IV-B-1): directly compromisable with phone + SMS code,
compromisable through one middle layer, through two layers of full-capacity
parents, through two layers involving half-capacity parents, or safe.

The engine is **indexed**: instead of rescanning every node per query (the
seed's quadratic-to-cubic behaviour), parent/couple/level queries run over
the inverted indexes of :mod:`repro.core.index` (factor -> providers,
info kind -> holders, masked-view holders per maskable factor) and memoize
:class:`PathCoverage` per path.  The *global* dependency-level machinery
-- the depth fixpoints behind Section IV-B-1's percentages and the
per-service level classification -- lives in :mod:`repro.levels`; this
module keeps the per-node analysis (coverage, parents, couples, edges)
and delegates level questions to its lazily-built
:class:`~repro.levels.DepthFixpointEngine`, which also maintains those
fixpoints incrementally under mutation deltas.

Two more lazily-built engines complete the derivation layer: parent
sets read through a per-residual-signature postings view
(:class:`~repro.levels.parents.SignatureParentsView` -- one
intersection/union join shared by every service on the signature,
retracted per delta only for affected signatures), and the couple /
weak-edge record streams are served segment by segment from a
:class:`~repro.streams.RecordStreamEngine` whose per-service segments
survive mutations outside their dirty cone.  The per-signature member
sets and the combining enumeration behind them are memoized as
*lazily-materialized* replayable views (:class:`_LazyMemberSets`), so
the output-bound couple frontier is only ever derived as far as some
consumer has actually pulled.  The brute-force seed
semantics are preserved verbatim in :mod:`repro.core.reference`, and
``tests/test_tdg_equivalence.py`` differentially asserts the two engines
produce identical edge sets, couple records and level fractions.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
    Union,
)

import networkx as nx

from repro.core.authproc import ServiceAuthReport
from repro.core.collection import CollectionReport
from repro.core.index import (
    DOSSIER_KINDS,
    DOSSIER_THRESHOLD,
    MASKABLE_FACTORS,
    AttackerIndex,
    EcosystemIndex,
)
from repro.levels.engine import (
    MAX_DEPTH as _MAX_DEPTH,  # noqa: F401 - re-exported for reference.py
)
from repro.levels.engine import DependencyLevel, DepthFixpointEngine
from repro.levels.parents import SignatureParentsView
from repro.model.account import AuthPath, ServiceProfile
from repro.obs import DEFAULT_SIZE_BUCKETS, Instrumentation
from repro.streams.segments import RecordStreamEngine
from repro.model.attacker import AttackerCapability, AttackerProfile
from repro.model.ecosystem import Ecosystem
from repro.model.factors import (
    CredentialFactor,
    PersonalInfoKind,
    Platform,
    is_robust_factor,
)

__all__ = [
    "DOSSIER_KINDS",
    "DOSSIER_THRESHOLD",
    "CoupleRecord",
    "DependencyLevel",
    "PathCoverage",
    "TDGNode",
    "TransformationDependencyGraph",
    "canonical_length",
]

class _LazyMemberSets:
    """A memoized, lazily-materialized member-set sequence.

    The couple enumeration for one residual-factor signature can run to
    hundreds of thousands of minimal covers at ecosystem scale, but a
    cursor page needs only its first few -- so the per-signature cache
    stores this replayable view over the enumeration generator instead
    of a tuple.  Multiple consumers (every service sharing the
    signature, the stream segments) iterate concurrently: each iterator
    replays the shared buffer and advances the generator only past the
    buffered frontier, so every combination is derived at most once and
    only when some consumer actually reaches it.
    """

    __slots__ = ("_items", "_generator", "_done")

    def __init__(self, generator: Iterator[FrozenSet[str]]) -> None:
        self._items: List[FrozenSet[str]] = []
        self._generator = generator
        self._done = False

    def __iter__(self) -> Iterator[FrozenSet[str]]:
        position = 0
        while True:
            if position < len(self._items):
                yield self._items[position]
                position += 1
                continue
            if self._done:
                return
            try:
                self._items.append(next(self._generator))
            except StopIteration:
                self._done = True


def canonical_length(kind: PersonalInfoKind) -> int:
    """Canonical string length per maskable kind (18-digit citizen IDs,
    16-digit bankcards; nominal 12 elsewhere)."""
    if kind is PersonalInfoKind.CITIZEN_ID:
        return 18
    if kind is PersonalInfoKind.BANKCARD_NUMBER:
        return 16
    return 12


@dataclasses.dataclass(frozen=True)
class TDGNode:
    """One online account in the graph."""

    service: str
    domain: str
    #: CFA: every path that yields control of the account.
    takeover_paths: Tuple[AuthPath, ...]
    #: PIA: kinds readable in full from the logged-in UI (any platform).
    pia: FrozenSet[PersonalInfoKind]
    #: Kinds exposed only partially: kind -> union of revealed character
    #: positions across the service's platforms.  Input to the combining
    #: analysis (Insight 4), not to ordinary full-provider edges.
    pia_partial: Mapping[PersonalInfoKind, FrozenSet[int]] = dataclasses.field(
        default_factory=dict
    )

    def paths_on(self, platform: Optional[Platform]) -> Tuple[AuthPath, ...]:
        """Takeover paths, optionally restricted to one platform."""
        if platform is None:
            return self.takeover_paths
        return tuple(
            p for p in self.takeover_paths if p.platform is platform
        )


@dataclasses.dataclass(frozen=True)
class PathCoverage:
    """How one path of one node can be satisfied under the profile."""

    path: AuthPath
    #: Factors the attacker profile supplies by itself.
    innate: FrozenSet[CredentialFactor]
    #: Factors that must come from other compromised accounts.
    residual: FrozenSet[CredentialFactor]
    #: Factors nothing can supply (biometrics, hardware keys).
    unsatisfiable: FrozenSet[CredentialFactor]

    @property
    def is_direct(self) -> bool:
        """Whether the attacker profile alone satisfies the path."""
        return not self.residual and not self.unsatisfiable

    @property
    def is_blocked(self) -> bool:
        """Whether the path is dead regardless of chaining."""
        return bool(self.unsatisfiable)


@dataclasses.dataclass(frozen=True)
class CoupleRecord:
    """One Couple File entry: the providers jointly unlock the target path."""

    providers: FrozenSet[str]
    target: str
    path: AuthPath


class TransformationDependencyGraph:
    """The TDG over a set of nodes and one attacker profile.

    Queries are answered from precomputed inverted indexes
    (:class:`~repro.core.index.EcosystemIndex` /
    :class:`~repro.core.index.AttackerIndex`) and memoized: path coverages,
    full/half parents, couple records and the dependency-level fixpoints are
    each computed at most once per graph.  Use :meth:`analyze_many` to share
    the attacker-independent index across several attacker profiles.
    """

    def __init__(
        self,
        nodes: Iterable[TDGNode],
        attacker: AttackerProfile,
    ) -> None:
        self._nodes: Dict[str, TDGNode] = {}
        for node in nodes:
            if node.service in self._nodes:
                raise ValueError(f"duplicate TDG node {node.service!r}")
            self._nodes[node.service] = node
        self._attacker = attacker
        self._innate = attacker.innately_satisfiable()
        self._eco_index: Optional[EcosystemIndex] = None
        self._attacker_index: Optional[AttackerIndex] = None
        self._coverage_cache: Dict[AuthPath, PathCoverage] = {}
        #: Cached coverage keys grouped by owning service, so delta
        #: invalidation pops per service instead of scanning every path.
        self._coverage_by_service: Dict[str, List[AuthPath]] = {}
        self._full_parents_cache: Dict[str, FrozenSet[str]] = {}
        self._half_parents_cache: Dict[str, FrozenSet[str]] = {}
        # Service-id bitmask twins of the two caches above (sources of
        # truth; the frozensets are their decoded views).
        self._full_parents_masks: Dict[str, int] = {}
        self._half_parents_masks: Dict[str, int] = {}
        self._couples_cache: Dict[Tuple[str, int], Tuple[CoupleRecord, ...]] = {}
        self._combining_global_cache: Dict[
            Tuple[CredentialFactor, int], Tuple[FrozenSet[str], ...]
        ] = {}
        self._pool_cover_cache: Dict[Tuple[AuthPath, FrozenSet[str]], bool] = {}
        #: Per-signature member-set views: one lazily-materialized
        #: :class:`_LazyMemberSets` per (signature, max_size) -- an
        #: infeasible signature is simply a view that drains empty.
        self._signature_sets_cache: Dict[
            Tuple[Tuple[CredentialFactor, ...], int], _LazyMemberSets
        ] = {}
        self._signature_cover_cache: Dict[
            Tuple[Tuple[CredentialFactor, ...], FrozenSet[str]], bool
        ] = {}
        self._levels_engine: Optional[DepthFixpointEngine] = None
        self._parents_view: Optional[SignatureParentsView] = None
        self._streams_engine: Optional[RecordStreamEngine] = None
        #: Forward-closure support records keyed by (seeds, extra info,
        #: pinned email provider); maintained under deltas by
        #: :meth:`revalidate_closures` (support-reaching deltas mark a
        #: record dirty; the strategy engine resumes its fixpoint lazily).
        self._closure_cache: Dict[Tuple, object] = {}
        #: Instrumentation handle + per-graph metric label; attached by
        #: the owning session (:meth:`attach_instrumentation`), created
        #: lazily for standalone graphs.  Closure counters are registry
        #: children resolved once per graph in :meth:`_closure_counters`.
        self._obs: Optional[Instrumentation] = None
        self._obs_label = "default"
        self._closure_counters_cache: Optional[Tuple] = None
        self._cone_histogram = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_ecosystem(
        cls, ecosystem: Ecosystem, attacker: AttackerProfile
    ) -> "TransformationDependencyGraph":
        """Build the graph straight from service profiles."""
        return cls(
            (cls.node_from_profile(p) for p in ecosystem),
            attacker,
        )

    @staticmethod
    def nodes_from_reports(
        auth_reports: Mapping[str, ServiceAuthReport],
        collection_reports: Mapping[str, CollectionReport],
    ) -> Tuple[TDGNode, ...]:
        """Derive the node set from stage-1/stage-2 outputs.

        Split out of :meth:`from_reports` so the batch entry points can
        build the nodes once and share them across attacker profiles.
        """
        nodes = []
        for name, auth_report in auth_reports.items():
            collection = collection_reports.get(name)
            complete: FrozenSet[PersonalInfoKind] = frozenset()
            partial: Dict[PersonalInfoKind, FrozenSet[int]] = {}
            if collection is not None:
                complete = collection.effective_kinds(complete_only=True)
                for item in collection.masked_items():
                    if item.kind in complete:
                        continue
                    positions = item.revealed_positions or frozenset()
                    partial[item.kind] = partial.get(item.kind, frozenset()) | positions
            nodes.append(
                TDGNode(
                    service=name,
                    domain=auth_report.domain,
                    takeover_paths=auth_report.paths(),
                    pia=complete,
                    pia_partial=dict(partial),
                )
            )
        return tuple(nodes)

    @classmethod
    def from_reports(
        cls,
        auth_reports: Mapping[str, ServiceAuthReport],
        collection_reports: Mapping[str, CollectionReport],
        attacker: AttackerProfile,
    ) -> "TransformationDependencyGraph":
        """Build the graph from stage-1/stage-2 outputs (the probe path)."""
        return cls(cls.nodes_from_reports(auth_reports, collection_reports), attacker)

    @classmethod
    def analyze_many(
        cls,
        source: Union[Ecosystem, Iterable[TDGNode]],
        attackers: Iterable[AttackerProfile],
    ) -> Tuple["TransformationDependencyGraph", ...]:
        """Build one graph per attacker profile over a shared node set.

        The node list is derived once and the attacker-independent
        :class:`~repro.core.index.EcosystemIndex` is built once and shared;
        each graph only adds its per-profile factor->provider view.  This is
        the batch entry point the measurement study and defense evaluation
        use to sweep attacker profiles without rebuilding from scratch.
        """
        if isinstance(source, Ecosystem):
            nodes: Tuple[TDGNode, ...] = tuple(
                cls.node_from_profile(p) for p in source
            )
        else:
            items = tuple(source)
            if items and not isinstance(items[0], TDGNode):
                nodes = tuple(cls.node_from_profile(p) for p in items)
            else:
                nodes = items
        shared: Optional[EcosystemIndex] = None
        graphs: List[TransformationDependencyGraph] = []
        for attacker in attackers:
            graph = cls(nodes, attacker)
            if shared is None:
                shared = graph.ecosystem_index()
            else:
                graph._eco_index = shared
            graphs.append(graph)
        return tuple(graphs)

    @staticmethod
    def node_from_profile(profile: ServiceProfile) -> TDGNode:
        """Convert one service profile into a TDG node."""
        complete: Set[PersonalInfoKind] = set()
        partial: Dict[PersonalInfoKind, FrozenSet[int]] = {}
        for platform in profile.platforms:
            for kind in profile.info_on(platform):
                spec = profile.mask_for(platform, kind)
                length = canonical_length(kind)
                positions = spec.revealed_positions(length)
                if len(positions) >= length:
                    complete.add(kind)
                else:
                    partial[kind] = partial.get(kind, frozenset()) | positions
        # A service whose own platforms mask *differently* can leak the full
        # value by itself (the Gome web-vs-mobile case): union first.
        for kind, positions in list(partial.items()):
            if len(positions) >= canonical_length(kind):
                complete.add(kind)
        for kind in complete:
            partial.pop(kind, None)
        return TDGNode(
            service=profile.name,
            domain=profile.domain,
            takeover_paths=profile.takeover_paths(),
            pia=frozenset(complete),
            pia_partial=dict(partial),
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def attacker(self) -> AttackerProfile:
        """The attacker profile the graph was computed under."""
        return self._attacker

    @property
    def nodes(self) -> Tuple[TDGNode, ...]:
        """All nodes, in insertion order."""
        return tuple(self._nodes.values())

    def node(self, service: str) -> TDGNode:
        """Look a node up by service name."""
        return self._nodes[service]

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, service: object) -> bool:
        return service in self._nodes

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------

    def ecosystem_index(self) -> EcosystemIndex:
        """The attacker-independent inverted index (built lazily, shared by
        :meth:`analyze_many` across profiles)."""
        if self._eco_index is None:
            self._eco_index = EcosystemIndex(self._nodes)
        return self._eco_index

    def attacker_index(self) -> AttackerIndex:
        """The per-profile factor->provider index (built lazily)."""
        if self._attacker_index is None:
            self._attacker_index = self.ecosystem_index().view(self._attacker)
        return self._attacker_index

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------

    def attach_instrumentation(
        self, instrumentation: Instrumentation, label: str = "default"
    ) -> None:
        """Adopt a shared :class:`~repro.obs.Instrumentation` handle.

        The owning session calls this right after building its graphs and
        before any lazy engine exists, so every engine layer resolves its
        registry children from the shared handle; ``label`` becomes this
        graph's ``attacker`` metric label (one registry distinguishes
        co-resident attacker views).  Attaching resets any instrument
        children already resolved against a previous handle.
        """
        self._obs = instrumentation
        self._obs_label = label
        self._closure_counters_cache = None
        self._cone_histogram = None

    def instrumentation(self) -> Instrumentation:
        """This graph's handle (lazily created and enabled when no
        session attached one, so standalone graphs still count)."""
        if self._obs is None:
            self._obs = Instrumentation()
        return self._obs

    def instrumentation_label(self) -> str:
        """The ``attacker`` label value this graph's metrics carry."""
        return self._obs_label

    def _closure_counters(self) -> Tuple:
        """(hits, computes, resumes, revalidations) registry children."""
        cached = self._closure_counters_cache
        if cached is None:
            obs = self.instrumentation()
            label = self._obs_label
            cached = tuple(
                obs.counter(
                    f"repro_closure_cache_{name}_total",
                    help_,
                    labels=("attacker",),
                ).labels(attacker=label)
                for name, help_ in (
                    ("hits", "Clean closure records served with no fixpoint work."),
                    ("computes", "Scratch forward-closure fixpoint runs."),
                    ("resumes", "Incremental re-derivations from a dirty record."),
                    ("revalidations", "Closure records a delta marked dirty."),
                )
            )
            self._closure_counters_cache = cached
        return cached

    def levels_engine(self) -> DepthFixpointEngine:
        """The dependency-level engine (built lazily, maintained under
        deltas once built)."""
        if self._levels_engine is None:
            self._levels_engine = DepthFixpointEngine(self)
        return self._levels_engine

    def reset_levels_engine(self) -> None:
        """Drop the level engine so the next level query recomputes every
        fixpoint from scratch (benchmark / test comparator hook)."""
        self._levels_engine = None

    def parents_view(self) -> SignatureParentsView:
        """The per-signature parent postings view (built lazily, retracted
        per delta once built).  :meth:`full_capacity_parents` and
        :meth:`half_capacity_parents` read their non-linked member sets
        from it, so one signature join serves every service sharing the
        residual signature."""
        if self._parents_view is None:
            self._parents_view = SignatureParentsView(self)
        return self._parents_view

    def streams_engine(self) -> RecordStreamEngine:
        """The segmented couple/weak-edge stream engine (built lazily,
        spliced per delta once built).  Owns one memoized record segment
        per (service, stream kind); :meth:`iter_couples`,
        :meth:`iter_weak_edges` and the API layer's cursor pages all
        consume the streams through it."""
        if self._streams_engine is None:
            self._streams_engine = RecordStreamEngine(self)
        return self._streams_engine

    def reset_streams_engine(self) -> None:
        """Drop the stream engine so the next stream consumption
        re-derives every segment (benchmark / test comparator hook)."""
        self._streams_engine = None

    # ------------------------------------------------------------------
    # Forward-closure cache (consulted by repro.core.strategy)
    # ------------------------------------------------------------------

    #: Bound on distinct cached closure keys (seeds x breach info x pinned
    #: provider combinations); oldest entries are evicted first.
    _CLOSURE_CACHE_LIMIT = 64

    def closure_cache_get(self, key: Tuple):
        """The cached :class:`~repro.core.strategy.ClosureSupportRecord`
        for one argument key, or ``None``.

        Only clean records count as hits; a dirty record is returned so
        the strategy engine can resume the fixpoint from it (counted under
        ``resumes`` when the refreshed record is stored back).
        """
        record = self._closure_cache.get(key)
        if record is not None and not record.dirty:
            self._closure_counters()[0].inc()
        return record

    def closure_cache_put(self, key: Tuple, record, resumed: bool = False) -> None:
        """Memoize one closure record (the strategy engine's store hook).

        ``resumed`` distinguishes an incremental re-derivation from a
        scratch fixpoint run in the stats.
        """
        if resumed:
            self._closure_counters()[2].inc()
        else:
            self._closure_counters()[1].inc()
        if (
            key not in self._closure_cache
            and len(self._closure_cache) >= self._CLOSURE_CACHE_LIMIT
        ):
            self._closure_cache.pop(next(iter(self._closure_cache)))
        self._closure_cache[key] = record

    def closure_cache_stats(self) -> Dict[str, int]:
        """Closure-cache counters (observability and test hooks).

        - ``hits`` -- clean-record serves (no fixpoint work at all).
        - ``computes`` -- scratch fixpoint runs.
        - ``resumes`` -- incremental re-derivations from a dirty record.
        - ``revalidations`` -- records a delta marked dirty (support
          reached); safe-set patches and untouched survivals are free.
        - ``entries`` -- records currently cached (clean or dirty).

        A thin view over the ``repro_closure_cache_*_total`` registry
        counters (this graph's ``attacker`` label) -- same names, same
        numbers as the pre-registry ad-hoc dict.
        """
        hits, computes, resumes, revalidations = self._closure_counters()
        return {
            "hits": int(hits.value),
            "computes": int(computes.value),
            "resumes": int(resumes.value),
            "revalidations": int(revalidations.value),
            "entries": len(self._closure_cache),
        }

    def reset_closure_cache(self) -> None:
        """Drop every cached closure record so the next PAV query runs the
        scratch fixpoint (benchmark / test comparator hook)."""
        self._closure_cache.clear()

    def revalidate_closures(self, changes) -> None:
        """Route one node delta into every cached closure record.

        ``changes`` is the incremental maintainer's node-change list
        ``(service, old node or None, new node or None)``, applied *after*
        the node set and indexes absorbed the delta.  A cached closure's
        support set is its compromised services: non-compromised nodes
        contribute nothing to anyone else's fall decision (provenance,
        combining pools and info holders are all filtered to compromised
        accounts), so a delta *reaches* a closure only when it

        - touches a compromised service (its PIA/paths fed the fixpoint), or
        - adds/replaces a node that now falls to the closure's final IAD
          (monotonicity: a node that cannot fall at the final information
          set can never fall during the iteration).

        Deltas that only add or remove *safe* services patch the result's
        ``safe`` set in place and everything else survives verbatim.  A
        reaching delta no longer discards the record: it marks the record
        dirty, snapshotting the first-seen old node per touched service
        (phase A's baseline).  The next PAV query resumes the fixpoint
        from the record's per-round support postings
        (:class:`~repro.core.strategy.ClosureSupportRecord`), retracting
        only the rounds whose support actually moved and re-deriving from
        that frontier -- so mutation bursts coalesce into one bounded
        re-derivation instead of one scratch fixpoint per reaching delta.
        """
        if not self._closure_cache:
            return
        import dataclasses as _dataclasses

        from repro.core.strategy import StrategyEngine

        engine = StrategyEngine(self)
        for key, record in self._closure_cache.items():
            if record.dirty:
                # Already awaiting re-derivation: fold this delta in.  The
                # snapshots keep the *record-time* baseline (first touch
                # wins), so a burst that cancels itself out still resumes
                # into a fully-reused fixpoint.
                for name, old, _new in changes:
                    record.dirty.setdefault(name, old)
                continue
            _seeds, _extra, email_provider = key
            engine._email_provider = email_provider
            result = record.result
            # ``compromised`` is a derived property (one frozenset build
            # per access); hoist it off the per-change loop.
            compromised = result.compromised
            membership_changed = False
            reaches = False
            for name, old, new in changes:
                if name in compromised:
                    reaches = True
                    break
                if new is None:
                    # A safe service shut down: inert to the fixpoint, but
                    # the safe set must drop it.
                    membership_changed = True
                    continue
                if (
                    engine._try_takeover(new, result.final_info, compromised)
                    is not None
                ):
                    reaches = True
                    break
                if old is None:
                    # A new service that stays safe: closure untouched,
                    # safe set gains a member.
                    membership_changed = True
            if reaches:
                # Every change of the reaching delta enters the baseline:
                # even a non-reaching added service must be re-tested by
                # the resume, because re-derived rounds can grow the IAD
                # beyond the final set it was cleared against here.
                self._closure_counters()[3].inc()
                for name, old, _new in changes:
                    record.dirty.setdefault(name, old)
            elif membership_changed:
                record.result = _dataclasses.replace(
                    result,
                    safe=frozenset(self._nodes) - compromised,
                )

    # ------------------------------------------------------------------
    # Incremental maintenance (used by repro.dynamic.incremental)
    # ------------------------------------------------------------------

    def invalidate_after_delta(
        self,
        touched_services: FrozenSet[str],
        affected_factors: FrozenSet[CredentialFactor],
        combining_factors: FrozenSet[CredentialFactor],
        changed_names: FrozenSet[str],
    ) -> None:
        """Drop exactly the memoized entries a node delta can reach.

        Called by the incremental maintainer *after* the node set and the
        live indexes have absorbed a delta.  Arguments:

        - ``touched_services``: services whose nodes were added, removed,
          or replaced (their own paths' memoized state is stale).
        - ``affected_factors``: factors whose provider postings or
          combining state changed under this graph's profile -- any path
          demanding one of them may now split or chain differently.
        - ``combining_factors``: the subset whose masked-view postings
          changed (the only entries the combining enumeration depends on).
        - ``changed_names``: names added to or removed from the node set;
          they shift ``LINKED_ACCOUNT`` provider sets for paths naming
          them.

        The dependency-level fixpoints are *not* dropped: the same four
        arguments are routed to the :meth:`levels_engine`, which
        delta-BFSes the affected cone of both depth maps and keeps every
        level-classification entry the delta cannot reach (lazily, on the
        next level query).  The record streams are *not* dropped either:
        the :meth:`streams_engine` receives the same scope and splices
        only the dirty segments on its next read, and the
        :meth:`parents_view` retracts exactly the signature member sets
        whose factors' provider postings moved (phase A; the next parent
        read re-joins them, phase B).

        The reachable-service set itself comes from the index's
        reverse-dependency postings (factor -> demanders, provider ->
        linking services) instead of predicate scans over every memoized
        entry, so invalidation is O(affected), not O(cached x paths).
        """
        if self._levels_engine is not None:
            self._levels_engine.note_delta(
                touched_services,
                affected_factors,
                combining_factors,
                changed_names,
            )
        if self._streams_engine is not None:
            self._streams_engine.note_delta(
                touched_services,
                affected_factors,
                combining_factors,
                changed_names,
            )
        if self._parents_view is not None:
            self._parents_view.retract(affected_factors)
        if self._eco_index is None:
            # No index -> no memo was ever computed; nothing to drop.
            return
        eco = self._eco_index

        affected_services = set(touched_services)
        for factor in affected_factors:
            affected_services |= eco.demanders(factor)
        for name in changed_names:
            affected_services |= eco.linked_consumers_of(name)

        cone = self._cone_histogram
        if cone is None:
            cone = self.instrumentation().histogram(
                "repro_invalidation_cone_services",
                "Services a mutation delta's invalidation cone reached.",
                labels=("attacker",),
                buckets=DEFAULT_SIZE_BUCKETS,
            ).labels(attacker=self._obs_label)
            self._cone_histogram = cone
        cone.observe(len(affected_services))

        for service in affected_services:
            for path in self._coverage_by_service.pop(service, ()):
                self._coverage_cache.pop(path, None)
            self._full_parents_cache.pop(service, None)
            self._half_parents_cache.pop(service, None)
            self._full_parents_masks.pop(service, None)
            self._half_parents_masks.pop(service, None)
        for key in [
            k
            for k in self._pool_cover_cache
            if k[0].service in affected_services
        ]:
            del self._pool_cover_cache[key]
        for key in [
            k for k in self._couples_cache if k[0] in affected_services
        ]:
            del self._couples_cache[key]
        for key in [
            k
            for k in self._signature_sets_cache
            if frozenset(k[0]) & affected_factors
        ]:
            del self._signature_sets_cache[key]
        for key in [
            k
            for k in self._signature_cover_cache
            if frozenset(k[0]) & affected_factors
        ]:
            del self._signature_cover_cache[key]
        for key in [
            k for k in self._combining_global_cache if k[0] in combining_factors
        ]:
            del self._combining_global_cache[key]

    # ------------------------------------------------------------------
    # Factor provisioning semantics
    # ------------------------------------------------------------------

    def innate_factors(self) -> FrozenSet[CredentialFactor]:
        """Factors the attacker profile supplies with no compromise."""
        return self._innate

    def coverage(self, node: TDGNode, path: AuthPath) -> PathCoverage:
        """Split one path's factors into innate / residual / unsatisfiable.

        Memoized per path (the split depends only on the path and the
        attacker profile, not on the node carrying it)."""
        cached = self._coverage_cache.get(path)
        if cached is not None:
            return cached
        view = self.attacker_index()
        innate: Set[CredentialFactor] = set()
        residual: Set[CredentialFactor] = set()
        unsatisfiable: Set[CredentialFactor] = set()
        for factor in path.factors:
            if factor in self._innate:
                innate.add(factor)
            elif is_robust_factor(factor) or factor is CredentialFactor.PASSWORD:
                # Passwords are secrets, not harvestable information; a path
                # demanding the current password cannot be chained into.
                unsatisfiable.add(factor)
            elif view.provider_names(factor, path):
                residual.add(factor)
            elif self.ecosystem_index().combinable_excluding(
                factor, path.service
            ):
                residual.add(factor)
            elif factor is CredentialFactor.CUSTOMER_SERVICE and (
                AttackerCapability.SOCIAL_ENGINEERING in self._attacker.capabilities
            ):
                residual.add(factor)
            else:
                unsatisfiable.add(factor)
        result = PathCoverage(
            path=path,
            innate=frozenset(innate),
            residual=frozenset(residual),
            unsatisfiable=frozenset(unsatisfiable),
        )
        self._coverage_cache[path] = result
        self._coverage_by_service.setdefault(path.service, []).append(path)
        return result

    def provides(
        self, provider: TDGNode, factor: CredentialFactor, path: AuthPath
    ) -> bool:
        """Whether controlling ``provider`` supplies ``factor`` for ``path``.

        Answered from the attacker index (the single source of the provider
        semantics; :mod:`repro.core.reference` keeps the scan-based
        restatement as the oracle), so ``provider`` must be a node of this
        graph.
        """
        if factor is CredentialFactor.LINKED_ACCOUNT:
            return provider.service in path.linked_providers
        return provider.service in self.attacker_index().static_provider_set(
            factor
        )

    def partial_positions(
        self, provider: TDGNode, factor: CredentialFactor
    ) -> FrozenSet[int]:
        """Character positions ``provider``'s masked view of ``factor``'s
        underlying value reveals (empty when not maskable / not exposed)."""
        maskable = MASKABLE_FACTORS.get(factor)
        if maskable is None:
            return frozenset()
        kind, _length = maskable
        return provider.pia_partial.get(kind, frozenset())

    def _combinable(
        self,
        factor: CredentialFactor,
        path: AuthPath,
        pool: FrozenSet[str],
    ) -> bool:
        """Insight 4: whether masked views pooled from ``pool`` reconstruct
        the factor's full value ("by attacking several service accounts and
        applying certain combining rules, the attacker could easily cipher
        covered SSN and bankcard numbers")."""
        return self._combinable_pool(factor, pool, excluded=path.service)

    def _combinable_pool(
        self,
        factor: CredentialFactor,
        pool: FrozenSet[str],
        excluded: Optional[str] = None,
    ) -> bool:
        """The combining check over ``pool``'s masked views, optionally
        excluding one service (the shared core of the per-path and
        signature-global modes).

        Iterates the pool (couple pools have at most ``max_size``
        members) against the per-service view postings instead of
        filtering every holder -- same union, O(pool) not O(holders),
        which is what keeps the full-cover prolog of a signature
        re-enumeration off the post-mutation serve path."""
        maskable = MASKABLE_FACTORS.get(factor)
        if maskable is None:
            return False
        _kind, length = maskable
        views = self.ecosystem_index().partial_position_masks(factor)
        union = 0
        for name in pool:
            if name == excluded:
                continue
            union |= views.get(name, 0)
        return union.bit_count() >= length

    def _pool_provides(
        self,
        factor: CredentialFactor,
        path: AuthPath,
        pool: FrozenSet[str],
    ) -> bool:
        """Whether the compromised ``pool`` satisfies ``factor`` -- via a
        full provider or via combining masked views."""
        names = self.attacker_index().provider_names(factor, path)
        if names & pool:
            return True
        return self._combinable(factor, path, pool)

    # ------------------------------------------------------------------
    # Definitions 1-3: parents and couples
    # ------------------------------------------------------------------

    def full_capacity_parents(self, service: str) -> FrozenSet[str]:
        """Definition 1: nodes that alone unlock at least one path.

        Served from the :meth:`parents_view` for every path whose
        residual signature excludes ``LINKED_ACCOUNT``: the per-signature
        intersection is materialized once and shared by every service on
        the signature (self-exclusion distributes, so subtracting the
        service afterwards is exact).  Only linked paths -- whose
        provider options are a property of the path -- intersect their
        own provider sets.  Per-service results stay memoized; a delta
        pops them along the reachable cone and retracts only the
        signature entries whose postings moved.
        """
        cached = self._full_parents_cache.get(service)
        if cached is not None:
            return cached
        result = self.ecosystem_index().decode_mask(
            self.full_capacity_parents_mask(service)
        )
        self._full_parents_cache[service] = result
        return result

    def full_capacity_parents_mask(self, service: str) -> int:
        """:meth:`full_capacity_parents` as a service-id bitmask -- the
        form the depth fixpoint and edge counters consume (one big-int OR
        per path instead of per-name set inserts)."""
        cached = self._full_parents_masks.get(service)
        if cached is not None:
            return cached
        node = self._nodes[service]
        signature_view = self.parents_view()
        mask = 0
        for path in node.takeover_paths:
            cover = self.coverage(node, path)
            if cover.is_blocked or not cover.residual:
                continue
            if CredentialFactor.LINKED_ACCOUNT in cover.residual:
                view = self.attacker_index()
                joint = -1
                for factor in cover.residual:
                    joint &= view.provider_mask(factor, path)
                    if not joint:
                        break
                mask |= joint
            else:
                mask |= signature_view.full_members_mask(cover.residual)
        own = self.ecosystem_index().ids.get(service)
        if own is not None:
            mask &= ~(1 << own)
        self._full_parents_masks[service] = mask
        return mask

    def half_capacity_parents(self, service: str) -> FrozenSet[str]:
        """Definition 2: nodes providing part (not all) of some path.

        The non-linked member sets (union minus intersection per residual
        signature) come from the :meth:`parents_view`, shared across every
        service on the signature; linked paths stay per-path.  Memoized
        and invalidated exactly like :meth:`full_capacity_parents`."""
        cached = self._half_parents_cache.get(service)
        if cached is not None:
            return cached
        result = self.ecosystem_index().decode_mask(
            self.half_capacity_parents_mask(service)
        )
        self._half_parents_cache[service] = result
        return result

    def half_capacity_parents_mask(self, service: str) -> int:
        """:meth:`half_capacity_parents` as a service-id bitmask."""
        cached = self._half_parents_masks.get(service)
        if cached is not None:
            return cached
        node = self._nodes[service]
        signature_view = self.parents_view()
        mask = 0
        for path in node.takeover_paths:
            cover = self.coverage(node, path)
            if cover.is_blocked or not cover.residual:
                continue
            if CredentialFactor.LINKED_ACCOUNT in cover.residual:
                view = self.attacker_index()
                joint = -1
                union = 0
                for factor in cover.residual:
                    provider_mask = view.provider_mask(factor, path)
                    joint &= provider_mask
                    union |= provider_mask
                mask |= union & ~joint
            else:
                mask |= signature_view.half_members_mask(cover.residual)
        own = self.ecosystem_index().ids.get(service)
        if own is not None:
            mask &= ~(1 << own)
        self._half_parents_masks[service] = mask
        return mask

    def couples(self, service: str, max_size: int = 3) -> Tuple[CoupleRecord, ...]:
        """Definition 3: minimal joint covers of some path (the Couple File).

        Only genuinely joint covers are recorded (size >= 2); covers
        containing a full-capacity parent are not minimal and are skipped.

        Two layers of reuse make this tractable at ecosystem scale:

        - Member-set lists are memoized per *residual-factor signature*
          (``LINKED_ACCOUNT`` aside, provider options depend only on the
          residual factors, not on the individual path); each path then
          filters out sets containing its own service.  A member set
          containing the excluded service can never prune, equal or cover
          one that does not, so the filtered list is identical to a
          per-path enumeration -- hundreds of paths collapse onto a handful
          of signatures.
        - Within one enumeration, options containing a *single-node full
          cover* are pruned before the product (every multi-member combo
          containing such a node fails minimality anyway), surviving
          two-member combos are minimal by construction, and the
          dropping-one-member check for triples is cached per pool.
        """
        cache_key = (service, max_size)
        cached = self._couples_cache.get(cache_key)
        if cached is not None:
            return cached
        result = tuple(self._service_couple_records(service, max_size))
        self._couples_cache[cache_key] = result
        return result

    def _service_couple_records(
        self, service: str, max_size: int = 3
    ) -> Iterator[CoupleRecord]:
        """One service's Couple File records, streamed in canonical order.

        The single enumeration point behind :meth:`couples`, the stream
        engine's segments, and the weak-edge family: member sets come
        from the memoized per-signature postings (shared by every service
        on the same residual-factor signature), each path filters out
        sets containing its own service, and an already-memoized
        per-service Couple File is replayed instead of re-enumerated.
        Nothing is cached here -- callers decide what to materialize.
        """
        cached = self._couples_cache.get((service, max_size))
        if cached is not None:
            yield from cached
            return
        node = self._nodes[service]
        seen: Set[Tuple[FrozenSet[str], AuthPath]] = set()
        for path in node.takeover_paths:
            cover = self.coverage(node, path)
            if cover.is_blocked or not cover.residual:
                continue
            if CredentialFactor.LINKED_ACCOUNT in cover.residual:
                member_sets = self._path_couple_sets(path, cover, max_size)
            else:
                factors = tuple(
                    sorted(cover.residual, key=lambda f: f.value)
                )
                member_sets = self._signature_couple_sets(factors, max_size)
            for members in member_sets:
                if service in members:
                    continue
                key = (members, path)
                if key in seen:
                    continue
                seen.add(key)
                yield CoupleRecord(
                    providers=members, target=service, path=path
                )

    def iter_couples(self, max_size: int = 3) -> Iterator[CoupleRecord]:
        """Stream every Couple File record, segment by segment.

        Consumes the :meth:`streams_engine`: one memoized record segment
        per service, concatenated in graph insertion order -- exactly the
        order concatenating :meth:`couples` over the node set would
        produce.  Segments a consumer has drained survive mutations
        (only the delta's dirty cone re-derives, from the per-signature
        member-set postings), so a re-scan after a mutation costs the
        dirty segments, not the whole enumeration.  The per-service
        :meth:`couples` memo is replayed when warm but never populated
        from here.
        """
        return self.streams_engine().iter_records("couples", max_size)

    def couple_file(self, max_size: int = 3) -> Tuple[CoupleRecord, ...]:
        """The full Couple File as one tuple (delegates to
        :meth:`iter_couples`; prefer the iterator at ecosystem scale)."""
        return tuple(self.iter_couples(max_size))

    def _signature_couple_sets(
        self, factors: Tuple[CredentialFactor, ...], max_size: int
    ):
        """Minimal joint covers for one residual-factor signature, over the
        whole graph with no service excluded.  Callers drop the sets
        containing their own service.

        Memoized as a :class:`_LazyMemberSets`: the enumeration -- the
        output-bound frontier of the whole pipeline -- materializes only
        as far as some consumer has pulled, and every service sharing the
        signature replays the shared buffer.  A delta pops exactly the
        signatures containing an affected factor; the next pull re-derives
        only those.
        """
        cache_key = (factors, max_size)
        cached = self._signature_sets_cache.get(cache_key)
        if cached is not None:
            return cached
        view = self.attacker_index()
        eco = self.ecosystem_index()
        option_lists: List[object] = []
        candidates: Set[str] = set()
        for factor in factors:
            providers = view.static_providers_ordered(factor)
            candidates.update(providers)
            singletons = tuple(frozenset({name}) for name in providers)
            combining = self._combining_sets_global(factor, max_size)
            if isinstance(combining, tuple):
                # Non-maskable factor: provider singletons only.
                option_lists.append(singletons + combining)
                continue
            # Candidate full-cover names need no enumeration: combining
            # members are always masked-view holders (a superset of the
            # members actually enumerated, which prunes identically --
            # names outside every option prune nothing).
            candidates.update(
                name for name, _positions in eco.partial_holders[factor]
            )
            option_lists.append(
                _LazyMemberSets(
                    itertools.chain(iter(singletons), iter(combining))
                )
            )
        result = _LazyMemberSets(
            self._iter_couple_sets(
                factors,
                option_lists,
                max_size,
                lambda pool: self._signature_covers(factors, pool),
                frozenset(candidates),
            )
        )
        self._signature_sets_cache[cache_key] = result
        return result

    def _path_couple_sets(
        self, path: AuthPath, cover: PathCoverage, max_size: int
    ) -> Tuple[FrozenSet[str], ...]:
        """Per-path enumeration for signatures involving ``LINKED_ACCOUNT``
        (whose provider options are a property of the path)."""
        view = self.attacker_index()
        factors = tuple(sorted(cover.residual, key=lambda f: f.value))
        option_lists: List[Tuple[FrozenSet[str], ...]] = []
        for factor in factors:
            options: List[FrozenSet[str]] = [
                frozenset({name})
                for name in view.providers_ordered(factor, path)
            ]
            options.extend(self._combining_sets(factor, path, max_size))
            if not options:
                return ()
            option_lists.append(tuple(options))
        return tuple(
            self._iter_couple_sets(
                factors,
                option_lists,
                max_size,
                lambda pool: self._covers_residual(path, cover, pool),
            )
        )

    @staticmethod
    def _iter_couple_sets(
        factors: Tuple[CredentialFactor, ...],
        option_lists: List[object],
        max_size: int,
        covers,
        candidates: Optional[FrozenSet[str]] = None,
    ) -> Iterator[FrozenSet[str]]:
        """Shared product enumeration with full-cover pruning and the
        size-2 minimality shortcut; ``covers(pool)`` decides whether a pool
        satisfies every signature factor.  A generator so the memoized
        per-signature view (:class:`_LazyMemberSets`) materializes combos
        only as far as consumers pull.

        ``option_lists`` entries are tuples or replayable lazy views;
        ``candidates`` names every service that can appear in an option
        (a superset is fine -- full covers outside every option prune
        nothing).  When omitted it is derived by draining the options,
        which is only acceptable for eager (tuple) lists.
        """
        if candidates is None:
            pooled: Set[str] = set()
            for options in option_lists:
                for members in options:
                    pooled |= members
            candidates = frozenset(pooled)
        full_covers = frozenset(
            name for name in candidates if covers(frozenset({name}))
        )

        def keep(options) -> Iterator[FrozenSet[str]]:
            for option in options:
                if not (option & full_covers):
                    yield option

        pruned: List[object] = [
            tuple(keep(options))
            if isinstance(options, tuple)
            else _LazyMemberSets(keep(options))
            for options in option_lists
        ]
        seen: Set[FrozenSet[str]] = set()

        def consider(members: FrozenSet[str]) -> bool:
            size = len(members)
            if size < 2 or size > max_size:
                return False
            if members in seen:
                return False
            # Two-member sets are minimal by construction here: a redundant
            # member would be a single-node full cover, and those options
            # were pruned above.  Only larger sets need the drop-one check.
            if size > 2 and any(
                covers(members - {member}) for member in members
            ):
                return False
            seen.add(members)
            return True

        # Arity-specialized loops in itertools.product order (an empty
        # pruned list yields no combos, the old infeasible early-out).
        if len(pruned) == 1:
            for option in pruned[0]:
                if consider(option):
                    yield option
        elif len(pruned) == 2:
            first, second = pruned
            for one in first:
                for two in second:
                    members = one | two
                    if consider(members):
                        yield members
        else:
            last = len(pruned) - 1

            def combos(level: int, acc: FrozenSet[str]):
                if level == last:
                    for option in pruned[level]:
                        yield acc | option
                else:
                    for option in pruned[level]:
                        yield from combos(level + 1, acc | option)

            for members in combos(0, frozenset()):
                if consider(members):
                    yield members

    def _signature_covers(
        self, factors: Tuple[CredentialFactor, ...], pool: FrozenSet[str]
    ) -> bool:
        """Whether ``pool`` satisfies every factor of the signature, with no
        excluded service (cached per signature)."""
        key = (factors, pool)
        cached = self._signature_cover_cache.get(key)
        if cached is None:
            cached = all(
                self._static_pool_provides(factor, pool) for factor in factors
            )
            self._signature_cover_cache[key] = cached
        return cached

    def _static_pool_provides(
        self, factor: CredentialFactor, pool: FrozenSet[str]
    ) -> bool:
        """Path-independent ``_pool_provides`` (no excluded service, no
        ``LINKED_ACCOUNT``): a full provider in the pool, or combining."""
        if self.attacker_index().static_provider_set(factor) & pool:
            return True
        return self._combinable_pool(factor, pool)

    def _combining_sets(
        self, factor: CredentialFactor, path: AuthPath, max_size: int = 3
    ) -> List[FrozenSet[str]]:
        """Minimal sets of partial views that jointly reconstruct ``factor``.

        The enumeration over pairs and triples of masked-view holders is
        memoized once over *all* holders; per-path results are the memoized
        sets minus any containing the path's own service (a set containing
        the excluded service can never prune or equal one that does not, so
        the filtered result is identical to a per-path enumeration).
        """
        return [
            members
            for members in self._combining_sets_global(factor, max_size)
            if path.service not in members
        ]

    def _combining_sets_global(self, factor: CredentialFactor, max_size: int):
        """Insight 4's combining enumeration over every masked-view holder.

        Enumeration order is the seed's (all pairs, then all triples, in
        holder insertion order).  Two seed checks are restated in cheaper
        but equivalent forms: the within-combo minimality check becomes a
        precomputed covers-alone / pair-coverage lookup, and the
        ``existing <= members`` subset prune is dropped entirely -- a size-2
        result is a covering pair, so any triple containing one is already
        rejected by the minimality check, and equal-size duplicates cannot
        occur across distinct holder combinations.

        Memoized as a :class:`_LazyMemberSets`: at ecosystem scale the
        triples phase alone can run to hundreds of thousands of covers,
        so the enumeration materializes only as far as consumers pull --
        a post-mutation cursor page pulls a handful, while a full Couple
        File scan drains it once into the shared buffer.  Coverage and
        minimality conditions depend only on the revealed-position
        bitmask, so they are precomputed per distinct *mask class*
        (catalogs mask with a few patterns) and each combo costs three
        table lookups.
        """
        cache_key = (factor, max_size)
        cached = self._combining_global_cache.get(cache_key)
        if cached is not None:
            return cached
        maskable = MASKABLE_FACTORS.get(factor)
        if maskable is None or max_size < 2:
            empty: Tuple[FrozenSet[str], ...] = ()
            self._combining_global_cache[cache_key] = empty
            return empty
        _kind, length = maskable
        view = _LazyMemberSets(
            self._iter_combining_sets(length, factor, max_size)
        )
        self._combining_global_cache[cache_key] = view
        return view

    def _iter_combining_sets(
        self, length: int, factor: CredentialFactor, max_size: int
    ) -> Iterator[FrozenSet[str]]:
        """The combining generator behind :meth:`_combining_sets_global`:
        all covering, minimal pairs then triples of masked-view holders,
        in holder insertion order, gated by per-mask-class tables."""
        holders = self.ecosystem_index().partial_holders[factor]
        count = len(holders)
        if not count:
            return
        names = [name for name, _positions in holders]
        class_index: Dict[int, int] = {}
        class_of: List[int] = []
        for _name, positions in holders:
            mask = 0
            for position in positions:
                mask |= 1 << position
            cls = class_index.setdefault(mask, len(class_index))
            class_of.append(cls)
        class_masks = list(class_index)
        alone = [bin(mask).count("1") >= length for mask in class_masks]
        pair_rows = [
            [
                bin(mask_a | mask_b).count("1") >= length
                for mask_b in class_masks
            ]
            for mask_a in class_masks
        ]
        for i in range(count):
            ci = class_of[i]
            alone_i = alone[ci]
            row_i = pair_rows[ci]
            for j in range(i + 1, count):
                cj = class_of[j]
                if row_i[cj] and not (alone_i or alone[cj]):
                    yield frozenset({names[i], names[j]})
        if max_size < 3:
            return
        for i in range(count):
            ci = class_of[i]
            if alone[ci]:
                continue
            row_i = pair_rows[ci]
            mask_i = class_masks[ci]
            for j in range(i + 1, count):
                cj = class_of[j]
                if row_i[cj] or alone[cj]:
                    continue
                # One validity table per (class_i, class_j): the k loop
                # then costs a single lookup per holder.
                union_ij = mask_i | class_masks[cj]
                row_j = pair_rows[cj]
                valid = [
                    not (row_i[ck] or row_j[ck] or alone[ck])
                    and bin(union_ij | class_masks[ck]).count("1") >= length
                    for ck in range(len(class_masks))
                ]
                name_i, name_j = names[i], names[j]
                for k in range(j + 1, count):
                    if valid[class_of[k]]:
                        yield frozenset({name_i, name_j, names[k]})

    def _covers_residual(
        self,
        path: AuthPath,
        cover: PathCoverage,
        pool: FrozenSet[str],
    ) -> bool:
        """Whether ``pool`` satisfies every residual factor of ``path``
        (cached; rest-pools repeat massively across the couple product)."""
        key = (path, pool)
        cached = self._pool_cover_cache.get(key)
        if cached is None:
            cached = all(
                self._pool_provides(factor, path, pool)
                for factor in cover.residual
            )
            self._pool_cover_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------

    def strong_edges(self) -> FrozenSet[Tuple[str, str]]:
        """All strong-directivity edges (full-capacity parent -> child)."""
        edges: Set[Tuple[str, str]] = set()
        for service in self._nodes:
            for parent in self.full_capacity_parents(service):
                edges.add((parent, service))
        return frozenset(edges)

    def strong_edge_count(self) -> int:
        """``len(strong_edges())`` without building the edge set.

        Each (parent, child) pair is distinct by construction -- one
        membership per child's parent set -- so the count is the sum of
        the memoized parent-set sizes: O(services) dictionary lookups
        when warm, re-deriving only the parent sets a delta reached.
        The serving layer's edge summaries count through this."""
        return sum(
            self.full_capacity_parents_mask(service).bit_count()
            for service in self._nodes
        )

    def iter_weak_edges(
        self, max_size: int = 3
    ) -> Iterator[Tuple[str, str]]:
        """Stream weak-directivity edges without materializing the Couple
        File.

        Consumes the :meth:`streams_engine`'s weak-edge segments: one
        tuple of distinct ``(provider, child)`` pairs per service, child
        by child, derived from the per-signature member-set postings (or
        replayed from a warm couple segment / :meth:`couples` memo) --
        never storing per-service couple records for weak-only
        consumers.  Segments survive mutations outside their dirty cone,
        so repeat counts (e.g. a rollout trajectory's per-step weak-edge
        count) re-derive only what each delta touched.
        """
        return self.streams_engine().iter_records("weak_edges", max_size)

    def weak_edges(self) -> FrozenSet[Tuple[str, str]]:
        """All weak-directivity edges (couple member -> child)."""
        return frozenset(self.iter_weak_edges())

    def to_networkx(self, include_weak: bool = False) -> nx.DiGraph:
        """Export to a NetworkX digraph (Fig. 4 rendering and analysis).

        Nodes carry ``fringe`` (bool) and ``domain`` attributes; edges carry
        ``directivity`` in {"strong", "weak"}.
        """
        graph = nx.DiGraph()
        for node in self._nodes.values():
            graph.add_node(
                node.service,
                domain=node.domain,
                fringe=self.is_direct(node.service),
            )
        for parent, child in self.strong_edges():
            graph.add_edge(parent, child, directivity="strong")
        if include_weak:
            for parent, child in self.weak_edges():
                if not graph.has_edge(parent, child):
                    graph.add_edge(parent, child, directivity="weak")
        return graph

    # ------------------------------------------------------------------
    # Dependency levels (Section IV-B-1's percentages; delegated to the
    # repro.levels engine, which maintains them under mutation deltas)
    # ------------------------------------------------------------------

    def is_direct(
        self, service: str, platform: Optional[Platform] = None
    ) -> bool:
        """Whether the attacker profile alone takes the account over."""
        return self.levels_engine().is_direct(service, platform)

    def _depths(self) -> Dict[str, int]:
        """Minimal compromise depth per node, joint coverage allowed.

        Depth 0 nodes fall to the attacker profile alone; depth ``k`` nodes
        need information pooled from nodes of depth < ``k``.  Unreachable
        nodes are absent from the result.
        """
        return self.levels_engine().joint_depths()

    def _pure_full_depths(self) -> Dict[str, int]:
        """Minimal chain depth using only full-capacity (single-parent)
        steps -- the "all full capacity parents" variant of the paper's
        category (3)."""
        return self.levels_engine().pure_full_depths()

    def dependency_levels(
        self, platform: Platform
    ) -> Dict[str, FrozenSet[DependencyLevel]]:
        """Per-service dependency levels on one platform.

        Levels are non-exclusive across a service's paths ("the overall
        percentage can not be summed up to 100% since one service can have
        multiple reset combinations").  Served from the level engine's
        per-service cache; after a mutation only the entries the delta
        could reach are reclassified.
        """
        return self.levels_engine().dependency_levels(platform)

    def level_fractions(
        self, platform: Platform
    ) -> Dict[DependencyLevel, float]:
        """Fraction of platform services in each level (non-exclusive)."""
        levels = self.dependency_levels(platform)
        if not levels:
            raise ValueError(f"no services on {platform}")
        counts = {level: 0 for level in DependencyLevel}
        for service_levels in levels.values():
            for level in service_levels:
                counts[level] += 1
        n = len(levels)
        return {level: counts[level] / n for level in DependencyLevel}

    def levels_report(
        self, platforms: Iterable[Platform]
    ) -> Dict[Platform, Dict[DependencyLevel, float]]:
        """Level fractions for several platforms off one engine flush --
        the batch entry point the measurement study and the defense
        evaluation consume levels through, so their per-platform sweeps
        share the engine's warm fixpoints."""
        return {
            platform: self.level_fractions(platform) for platform in platforms
        }

    def fringe_nodes(self) -> FrozenSet[str]:
        """Fig. 4's red dots: services the profile takes over directly."""
        return self.levels_engine().direct_services()
