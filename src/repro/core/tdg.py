"""ActFort stage 3: Transformation Dependency Graph generation.

Each node is an online account with a credential-factor attribute (CFA --
its takeover paths) and a personal-information attribute (PIA -- what it
exposes once controlled).  An edge ``u -> v`` exists when information from
``u`` satisfies credential factors of ``v`` under a given attacker profile
(Section III-D):

- ``u`` is a **full capacity parent** of ``v`` (Definition 1, a
  *strong-directivity* edge) when ``u`` alone provides every factor of at
  least one of ``v``'s paths (beyond what the attacker profile supplies).
- ``u`` is a **half capacity parent** (Definition 2) when it provides some
  but not all of a path's factors.
- Nodes that *jointly* cover a path are **couple nodes** (Definition 3,
  *weak-directivity* edges); the tuples are recorded in the Couple File.

On top of the raw graph the module computes the paper's dependency-level
statistics (Section IV-B-1): directly compromisable with phone + SMS code,
compromisable through one middle layer, through two layers of full-capacity
parents, through two layers involving half-capacity parents, or safe.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

import networkx as nx

from repro.core.authproc import ServiceAuthReport
from repro.core.collection import CollectionReport
from repro.model.account import AuthPath, ServiceProfile
from repro.model.attacker import AttackerCapability, AttackerProfile
from repro.model.ecosystem import Ecosystem
from repro.model.factors import (
    CredentialFactor,
    PersonalInfoKind,
    Platform,
    factor_satisfied_by_info,
    is_robust_factor,
)

#: Facts that can convince a customer-service agent (Case III's web path).
DOSSIER_KINDS: FrozenSet[PersonalInfoKind] = frozenset(
    {
        PersonalInfoKind.REAL_NAME,
        PersonalInfoKind.CITIZEN_ID,
        PersonalInfoKind.ADDRESS,
        PersonalInfoKind.CELLPHONE_NUMBER,
        PersonalInfoKind.EMAIL_ADDRESS,
        PersonalInfoKind.BANKCARD_NUMBER,
        PersonalInfoKind.ACQUAINTANCE_NAME,
        PersonalInfoKind.ORDER_HISTORY,
    }
)

#: Number of correct dossier facts a human agent demands.
DOSSIER_THRESHOLD = 3

#: Depth cap for the level analysis; the paper's categories stop at two
#: middle layers.
_MAX_DEPTH = 8

#: Maskable credential factors: the info kind whose partial (masked) views
#: can be combined across providers to reconstruct the value (Insight 4),
#: plus the canonical value length the union must cover.
_MASKABLE_FACTORS: Mapping[CredentialFactor, Tuple[PersonalInfoKind, int]] = {
    CredentialFactor.CITIZEN_ID: (PersonalInfoKind.CITIZEN_ID, 18),
    CredentialFactor.BANKCARD_NUMBER: (PersonalInfoKind.BANKCARD_NUMBER, 16),
}


def canonical_length(kind: PersonalInfoKind) -> int:
    """Canonical string length per maskable kind (18-digit citizen IDs,
    16-digit bankcards; nominal 12 elsewhere)."""
    if kind is PersonalInfoKind.CITIZEN_ID:
        return 18
    if kind is PersonalInfoKind.BANKCARD_NUMBER:
        return 16
    return 12


class DependencyLevel(enum.Enum):
    """The paper's four dependency relationships plus "safe"."""

    DIRECT = "direct"
    ONE_LAYER = "one_layer"
    TWO_LAYER_FULL = "two_layer_full"
    TWO_LAYER_MIXED = "two_layer_mixed"
    SAFE = "safe"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclasses.dataclass(frozen=True)
class TDGNode:
    """One online account in the graph."""

    service: str
    domain: str
    #: CFA: every path that yields control of the account.
    takeover_paths: Tuple[AuthPath, ...]
    #: PIA: kinds readable in full from the logged-in UI (any platform).
    pia: FrozenSet[PersonalInfoKind]
    #: Kinds exposed only partially: kind -> union of revealed character
    #: positions across the service's platforms.  Input to the combining
    #: analysis (Insight 4), not to ordinary full-provider edges.
    pia_partial: Mapping[PersonalInfoKind, FrozenSet[int]] = dataclasses.field(
        default_factory=dict
    )

    def paths_on(self, platform: Optional[Platform]) -> Tuple[AuthPath, ...]:
        """Takeover paths, optionally restricted to one platform."""
        if platform is None:
            return self.takeover_paths
        return tuple(
            p for p in self.takeover_paths if p.platform is platform
        )


@dataclasses.dataclass(frozen=True)
class PathCoverage:
    """How one path of one node can be satisfied under the profile."""

    path: AuthPath
    #: Factors the attacker profile supplies by itself.
    innate: FrozenSet[CredentialFactor]
    #: Factors that must come from other compromised accounts.
    residual: FrozenSet[CredentialFactor]
    #: Factors nothing can supply (biometrics, hardware keys).
    unsatisfiable: FrozenSet[CredentialFactor]

    @property
    def is_direct(self) -> bool:
        """Whether the attacker profile alone satisfies the path."""
        return not self.residual and not self.unsatisfiable

    @property
    def is_blocked(self) -> bool:
        """Whether the path is dead regardless of chaining."""
        return bool(self.unsatisfiable)


@dataclasses.dataclass(frozen=True)
class CoupleRecord:
    """One Couple File entry: the providers jointly unlock the target path."""

    providers: FrozenSet[str]
    target: str
    path: AuthPath


class TransformationDependencyGraph:
    """The TDG over a set of nodes and one attacker profile."""

    def __init__(
        self,
        nodes: Iterable[TDGNode],
        attacker: AttackerProfile,
    ) -> None:
        self._nodes: Dict[str, TDGNode] = {}
        for node in nodes:
            if node.service in self._nodes:
                raise ValueError(f"duplicate TDG node {node.service!r}")
            self._nodes[node.service] = node
        self._attacker = attacker
        self._innate = attacker.innately_satisfiable()
        self._depth_cache: Optional[Dict[str, int]] = None
        self._pure_full_cache: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_ecosystem(
        cls, ecosystem: Ecosystem, attacker: AttackerProfile
    ) -> "TransformationDependencyGraph":
        """Build the graph straight from service profiles."""
        return cls(
            (cls.node_from_profile(p) for p in ecosystem),
            attacker,
        )

    @classmethod
    def from_reports(
        cls,
        auth_reports: Mapping[str, ServiceAuthReport],
        collection_reports: Mapping[str, CollectionReport],
        attacker: AttackerProfile,
    ) -> "TransformationDependencyGraph":
        """Build the graph from stage-1/stage-2 outputs (the probe path)."""
        nodes = []
        for name, auth_report in auth_reports.items():
            collection = collection_reports.get(name)
            complete: FrozenSet[PersonalInfoKind] = frozenset()
            partial: Dict[PersonalInfoKind, FrozenSet[int]] = {}
            if collection is not None:
                complete = collection.effective_kinds(complete_only=True)
                for item in collection.masked_items():
                    if item.kind in complete:
                        continue
                    positions = item.revealed_positions or frozenset()
                    partial[item.kind] = partial.get(item.kind, frozenset()) | positions
            nodes.append(
                TDGNode(
                    service=name,
                    domain=auth_report.domain,
                    takeover_paths=auth_report.paths(),
                    pia=complete,
                    pia_partial=dict(partial),
                )
            )
        return cls(nodes, attacker)

    @staticmethod
    def node_from_profile(profile: ServiceProfile) -> TDGNode:
        """Convert one service profile into a TDG node."""
        complete: Set[PersonalInfoKind] = set()
        partial: Dict[PersonalInfoKind, FrozenSet[int]] = {}
        for platform in profile.platforms:
            for kind in profile.info_on(platform):
                spec = profile.mask_for(platform, kind)
                length = canonical_length(kind)
                positions = spec.revealed_positions(length)
                if len(positions) >= length:
                    complete.add(kind)
                else:
                    partial[kind] = partial.get(kind, frozenset()) | positions
        # A service whose own platforms mask *differently* can leak the full
        # value by itself (the Gome web-vs-mobile case): union first.
        for kind, positions in list(partial.items()):
            if len(positions) >= canonical_length(kind):
                complete.add(kind)
        for kind in complete:
            partial.pop(kind, None)
        return TDGNode(
            service=profile.name,
            domain=profile.domain,
            takeover_paths=profile.takeover_paths(),
            pia=frozenset(complete),
            pia_partial=dict(partial),
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def attacker(self) -> AttackerProfile:
        """The attacker profile the graph was computed under."""
        return self._attacker

    @property
    def nodes(self) -> Tuple[TDGNode, ...]:
        """All nodes, in insertion order."""
        return tuple(self._nodes.values())

    def node(self, service: str) -> TDGNode:
        """Look a node up by service name."""
        return self._nodes[service]

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, service: object) -> bool:
        return service in self._nodes

    # ------------------------------------------------------------------
    # Factor provisioning semantics
    # ------------------------------------------------------------------

    def innate_factors(self) -> FrozenSet[CredentialFactor]:
        """Factors the attacker profile supplies with no compromise."""
        return self._innate

    def coverage(self, node: TDGNode, path: AuthPath) -> PathCoverage:
        """Split one path's factors into innate / residual / unsatisfiable."""
        innate: Set[CredentialFactor] = set()
        residual: Set[CredentialFactor] = set()
        unsatisfiable: Set[CredentialFactor] = set()
        for factor in path.factors:
            if factor in self._innate:
                innate.add(factor)
            elif is_robust_factor(factor) or factor is CredentialFactor.PASSWORD:
                # Passwords are secrets, not harvestable information; a path
                # demanding the current password cannot be chained into.
                unsatisfiable.add(factor)
            elif self._providers_of(factor, path):
                residual.add(factor)
            elif self._combinable(factor, path, self._all_names()):
                residual.add(factor)
            elif factor is CredentialFactor.CUSTOMER_SERVICE and (
                AttackerCapability.SOCIAL_ENGINEERING in self._attacker.capabilities
            ):
                residual.add(factor)
            else:
                unsatisfiable.add(factor)
        return PathCoverage(
            path=path,
            innate=frozenset(innate),
            residual=frozenset(residual),
            unsatisfiable=frozenset(unsatisfiable),
        )

    def provides(
        self, provider: TDGNode, factor: CredentialFactor, path: AuthPath
    ) -> bool:
        """Whether controlling ``provider`` supplies ``factor`` for ``path``."""
        if is_robust_factor(factor) or factor is CredentialFactor.PASSWORD:
            return False
        if factor in (CredentialFactor.EMAIL_CODE, CredentialFactor.EMAIL_LINK):
            return (
                PersonalInfoKind.MAILBOX_ACCESS in provider.pia
                and AttackerCapability.EMAIL_CHANNEL_AFTER_COMPROMISE
                in self._attacker.capabilities
            )
        if factor is CredentialFactor.LINKED_ACCOUNT:
            return provider.service in path.linked_providers
        if factor is CredentialFactor.CUSTOMER_SERVICE:
            if (
                AttackerCapability.SOCIAL_ENGINEERING
                not in self._attacker.capabilities
            ):
                return False
            return len(provider.pia & DOSSIER_KINDS) >= DOSSIER_THRESHOLD
        return factor_satisfied_by_info(factor, provider.pia)

    def _providers_of(
        self, factor: CredentialFactor, path: AuthPath
    ) -> Tuple[TDGNode, ...]:
        return tuple(
            node
            for node in self._nodes.values()
            if node.service != path.service and self.provides(node, factor, path)
        )

    def _all_names(self) -> FrozenSet[str]:
        return frozenset(self._nodes)

    def partial_positions(
        self, provider: TDGNode, factor: CredentialFactor
    ) -> FrozenSet[int]:
        """Character positions ``provider``'s masked view of ``factor``'s
        underlying value reveals (empty when not maskable / not exposed)."""
        maskable = _MASKABLE_FACTORS.get(factor)
        if maskable is None:
            return frozenset()
        kind, _length = maskable
        return provider.pia_partial.get(kind, frozenset())

    def _combinable(
        self,
        factor: CredentialFactor,
        path: AuthPath,
        pool: FrozenSet[str],
    ) -> bool:
        """Insight 4: whether masked views pooled from ``pool`` reconstruct
        the factor's full value ("by attacking several service accounts and
        applying certain combining rules, the attacker could easily cipher
        covered SSN and bankcard numbers")."""
        maskable = _MASKABLE_FACTORS.get(factor)
        if maskable is None:
            return False
        _kind, length = maskable
        union: Set[int] = set()
        for name in pool:
            if name == path.service:
                continue
            union |= self.partial_positions(self._nodes[name], factor)
            if len(union) >= length:
                return True
        return False

    def _pool_provides(
        self,
        factor: CredentialFactor,
        path: AuthPath,
        pool: FrozenSet[str],
    ) -> bool:
        """Whether the compromised ``pool`` satisfies ``factor`` -- via a
        full provider or via combining masked views."""
        for name in pool:
            if name == path.service:
                continue
            if self.provides(self._nodes[name], factor, path):
                return True
        return self._combinable(factor, path, pool)

    # ------------------------------------------------------------------
    # Definitions 1-3: parents and couples
    # ------------------------------------------------------------------

    def full_capacity_parents(self, service: str) -> FrozenSet[str]:
        """Definition 1: nodes that alone unlock at least one path."""
        node = self._nodes[service]
        parents: Set[str] = set()
        for path in node.takeover_paths:
            cover = self.coverage(node, path)
            if cover.is_blocked or not cover.residual:
                continue
            for candidate in self._nodes.values():
                if candidate.service == service:
                    continue
                if all(
                    self.provides(candidate, factor, path)
                    for factor in cover.residual
                ):
                    parents.add(candidate.service)
        return frozenset(parents)

    def half_capacity_parents(self, service: str) -> FrozenSet[str]:
        """Definition 2: nodes providing part (not all) of some path."""
        node = self._nodes[service]
        halves: Set[str] = set()
        for path in node.takeover_paths:
            cover = self.coverage(node, path)
            if cover.is_blocked or not cover.residual:
                continue
            for candidate in self._nodes.values():
                if candidate.service == service:
                    continue
                provided = {
                    factor
                    for factor in cover.residual
                    if self.provides(candidate, factor, path)
                }
                if provided and provided != cover.residual:
                    halves.add(candidate.service)
        return frozenset(halves)

    def couples(self, service: str, max_size: int = 3) -> Tuple[CoupleRecord, ...]:
        """Definition 3: minimal joint covers of some path (the Couple File).

        Only genuinely joint covers are recorded (size >= 2); covers
        containing a full-capacity parent are not minimal and are skipped.
        """
        node = self._nodes[service]
        records: List[CoupleRecord] = []
        seen: Set[Tuple[FrozenSet[str], AuthPath]] = set()
        for path in node.takeover_paths:
            cover = self.coverage(node, path)
            if cover.is_blocked or not cover.residual:
                continue
            per_factor: Dict[CredentialFactor, Tuple[FrozenSet[str], ...]] = {}
            feasible = True
            for factor in cover.residual:
                options: List[FrozenSet[str]] = [
                    frozenset({p.service})
                    for p in self._providers_of(factor, path)
                ]
                options.extend(self._combining_sets(factor, path))
                if not options:
                    feasible = False
                    break
                per_factor[factor] = tuple(options)
            if not feasible:
                continue
            factors = sorted(per_factor, key=lambda f: f.value)
            for combo in itertools.product(*(per_factor[f] for f in factors)):
                members: FrozenSet[str] = frozenset().union(*combo)
                if len(members) < 2 or len(members) > max_size:
                    continue
                if self._has_redundant_member(members, cover, path):
                    continue
                key = (members, path)
                if key in seen:
                    continue
                seen.add(key)
                records.append(
                    CoupleRecord(providers=members, target=service, path=path)
                )
        return tuple(records)

    def _combining_sets(
        self, factor: CredentialFactor, path: AuthPath, max_size: int = 3
    ) -> List[FrozenSet[str]]:
        """Minimal sets of partial views that jointly reconstruct ``factor``.

        Enumerates pairs and triples of masked-view holders whose revealed
        positions union to the full value length (Insight 4's combining
        attack as Definition-3 couples).
        """
        maskable = _MASKABLE_FACTORS.get(factor)
        if maskable is None:
            return []
        _kind, length = maskable
        holders = [
            (node.service, self.partial_positions(node, factor))
            for node in self._nodes.values()
            if node.service != path.service
            and self.partial_positions(node, factor)
        ]
        results: List[FrozenSet[str]] = []
        for size in (2, 3):
            if size > max_size:
                break
            for combo in itertools.combinations(holders, size):
                union: FrozenSet[int] = frozenset().union(
                    *(positions for _n, positions in combo)
                )
                if len(union) < length:
                    continue
                members = frozenset(name for name, _p in combo)
                # Minimality: no strict subset may already cover.
                if any(
                    len(
                        frozenset().union(
                            *(p for n, p in combo if n != skip)
                        )
                    )
                    >= length
                    for skip, _ in combo
                ):
                    continue
                if any(existing <= members for existing in results):
                    continue
                results.append(members)
        return results

    def _has_redundant_member(
        self,
        members: FrozenSet[str],
        cover: PathCoverage,
        path: AuthPath,
    ) -> bool:
        """A cover is non-minimal if dropping a member still covers."""
        for member in members:
            rest = members - {member}
            if all(
                self._pool_provides(factor, path, rest)
                for factor in cover.residual
            ):
                return True
        return False

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------

    def strong_edges(self) -> FrozenSet[Tuple[str, str]]:
        """All strong-directivity edges (full-capacity parent -> child)."""
        edges: Set[Tuple[str, str]] = set()
        for service in self._nodes:
            for parent in self.full_capacity_parents(service):
                edges.add((parent, service))
        return frozenset(edges)

    def weak_edges(self) -> FrozenSet[Tuple[str, str]]:
        """All weak-directivity edges (couple member -> child)."""
        edges: Set[Tuple[str, str]] = set()
        for service in self._nodes:
            for record in self.couples(service):
                for provider in record.providers:
                    edges.add((provider, service))
        return frozenset(edges)

    def to_networkx(self, include_weak: bool = False) -> nx.DiGraph:
        """Export to a NetworkX digraph (Fig. 4 rendering and analysis).

        Nodes carry ``fringe`` (bool) and ``domain`` attributes; edges carry
        ``directivity`` in {"strong", "weak"}.
        """
        graph = nx.DiGraph()
        for node in self._nodes.values():
            graph.add_node(
                node.service,
                domain=node.domain,
                fringe=self.is_direct(node.service),
            )
        for parent, child in self.strong_edges():
            graph.add_edge(parent, child, directivity="strong")
        if include_weak:
            for parent, child in self.weak_edges():
                if not graph.has_edge(parent, child):
                    graph.add_edge(parent, child, directivity="weak")
        return graph

    # ------------------------------------------------------------------
    # Dependency levels (Section IV-B-1's percentages)
    # ------------------------------------------------------------------

    def is_direct(
        self, service: str, platform: Optional[Platform] = None
    ) -> bool:
        """Whether the attacker profile alone takes the account over."""
        node = self._nodes[service]
        return any(
            self.coverage(node, path).is_direct
            for path in node.paths_on(platform)
        )

    def _depths(self) -> Dict[str, int]:
        """Minimal compromise depth per node, joint coverage allowed.

        Depth 0 nodes fall to the attacker profile alone; depth ``k`` nodes
        need information pooled from nodes of depth < ``k``.  Unreachable
        nodes are absent from the result.
        """
        if self._depth_cache is not None:
            return self._depth_cache
        depths: Dict[str, int] = {}
        for service in self._nodes:
            if self.is_direct(service):
                depths[service] = 0
        for depth in range(1, _MAX_DEPTH + 1):
            pool = frozenset(
                name for name, d in depths.items() if d < depth
            )
            changed = False
            for service, node in self._nodes.items():
                if service in depths:
                    continue
                if self._coverable_by(node, pool):
                    depths[service] = depth
                    changed = True
            if not changed:
                break
        self._depth_cache = depths
        return depths

    def _coverable_by(self, node: TDGNode, pool: FrozenSet[str]) -> bool:
        for path in node.takeover_paths:
            cover = self.coverage(node, path)
            if cover.is_blocked:
                continue
            if all(
                self._pool_provides(factor, path, pool)
                for factor in cover.residual
            ):
                return True
        return False

    def _pure_full_depths(self) -> Dict[str, int]:
        """Minimal chain depth using only full-capacity (single-parent)
        steps -- the "all full capacity parents" variant of the paper's
        category (3)."""
        if self._pure_full_cache is not None:
            return self._pure_full_cache
        depths: Dict[str, int] = {}
        for service in self._nodes:
            if self.is_direct(service):
                depths[service] = 0
        parents: Dict[str, FrozenSet[str]] = {
            service: self.full_capacity_parents(service)
            for service in self._nodes
        }
        for depth in range(1, _MAX_DEPTH + 1):
            changed = False
            for service in self._nodes:
                if service in depths:
                    continue
                best = min(
                    (
                        depths[parent]
                        for parent in parents[service]
                        if parent in depths
                    ),
                    default=None,
                )
                if best is not None and best < depth:
                    depths[service] = best + 1
                    changed = True
            if not changed:
                break
        self._pure_full_cache = depths
        return depths

    def dependency_levels(
        self, platform: Platform
    ) -> Dict[str, FrozenSet[DependencyLevel]]:
        """Per-service dependency levels on one platform.

        Levels are non-exclusive across a service's paths ("the overall
        percentage can not be summed up to 100% since one service can have
        multiple reset combinations").
        """
        pure_full = self._pure_full_depths()
        depths = self._depths()
        joint_pool_1 = frozenset(
            name for name, d in depths.items() if d <= 1
        )
        full_pool = frozenset(depths)
        result: Dict[str, FrozenSet[DependencyLevel]] = {}
        for service, node in self._nodes.items():
            paths = node.paths_on(platform)
            if not paths:
                continue
            levels: Set[DependencyLevel] = set()
            for path in paths:
                cover = self.coverage(node, path)
                if cover.is_blocked:
                    continue
                # Each path contributes its *minimal* category; a service
                # still lands in several categories when different reset
                # combinations sit at different depths (which is why the
                # paper's percentages do not sum to 100%).
                if cover.is_direct:
                    levels.add(DependencyLevel.DIRECT)
                    continue
                full_parent_depths = [
                    pure_full[p.service]
                    for p in self._path_full_parents(node, path, cover)
                    if p.service in pure_full
                ]
                if any(d == 0 for d in full_parent_depths):
                    levels.add(DependencyLevel.ONE_LAYER)
                elif any(d == 1 for d in full_parent_depths):
                    levels.add(DependencyLevel.TWO_LAYER_FULL)
                elif self._jointly_coverable(node, path, cover, joint_pool_1):
                    levels.add(DependencyLevel.TWO_LAYER_MIXED)
            if not levels:
                # Either reachable only deeper than the paper's two-layer
                # categories (rare; folded into the mixed catch-all) or not
                # reachable at all on this platform -> safe.
                if self._platform_reachable(node, paths, full_pool):
                    levels.add(DependencyLevel.TWO_LAYER_MIXED)
                else:
                    levels.add(DependencyLevel.SAFE)
            result[service] = frozenset(levels)
        return result

    def _platform_reachable(
        self,
        node: TDGNode,
        paths: Tuple[AuthPath, ...],
        pool: FrozenSet[str],
    ) -> bool:
        pool = pool - {node.service}
        for path in paths:
            cover = self.coverage(node, path)
            if cover.is_blocked:
                continue
            if all(
                self._pool_provides(factor, path, pool)
                for factor in cover.residual
            ):
                return True
        return False

    def _path_full_parents(
        self, node: TDGNode, path: AuthPath, cover: PathCoverage
    ) -> Tuple[TDGNode, ...]:
        return tuple(
            candidate
            for candidate in self._nodes.values()
            if candidate.service != node.service
            and all(
                self.provides(candidate, factor, path)
                for factor in cover.residual
            )
        )

    def _jointly_coverable(
        self,
        node: TDGNode,
        path: AuthPath,
        cover: PathCoverage,
        pool: FrozenSet[str],
    ) -> bool:
        pool = pool - {node.service}
        return bool(cover.residual) and all(
            self._pool_provides(factor, path, pool)
            for factor in cover.residual
        )

    def level_fractions(
        self, platform: Platform
    ) -> Dict[DependencyLevel, float]:
        """Fraction of platform services in each level (non-exclusive)."""
        levels = self.dependency_levels(platform)
        if not levels:
            raise ValueError(f"no services on {platform}")
        n = len(levels)
        return {
            level: sum(1 for ls in levels.values() if level in ls) / n
            for level in DependencyLevel
        }

    def fringe_nodes(self) -> FrozenSet[str]:
        """Fig. 4's red dots: services the profile takes over directly."""
        return frozenset(
            service for service in self._nodes if self.is_direct(service)
        )
