"""Inverted indexes over a TDG node set -- the indexed TDG engine.

The seed implementation of :mod:`repro.core.tdg` answered every
"who can provide factor F?" question by rescanning all nodes, which made
Transformation Dependency Graph construction quadratic-to-cubic in
ecosystem size.  This module precomputes the two inversions the graph
queries over and over:

- :class:`EcosystemIndex` -- **attacker-independent** structure: for each
  personal-information kind, which services expose it in full
  (``holders_of``); for each maskable credential factor, which services
  hold a partial (masked) view and which character positions each view
  reveals (Insight 4's combining inputs); which services can feed a
  customer-service dossier; which services yield mailbox access.  It also
  carries the **reverse-dependency postings** the incremental level
  engine's delta-BFS walks forward: for each credential factor, which
  services *demand* it on some takeover path (``demanders``), and for
  each identity provider, which services accept it on a
  ``LINKED_ACCOUNT`` path (``linked_consumers_of``).
- :class:`AttackerIndex` -- one **per attacker profile**: for each
  credential factor, the exact set (and insertion-ordered tuple) of
  services that provide it under that profile's capabilities.  The
  provider semantics are bit-for-bit those of
  :meth:`~repro.core.tdg.TransformationDependencyGraph.provides`; the
  differential suite in ``tests/test_tdg_equivalence.py`` locks the
  equivalence against the brute-force reference.

Since the id-compaction pass, every posting here is **bitmask-backed**:
service names are interned onto dense monotone integer ids (the ids
*are* the insertion ordinals -- see :class:`repro.core.ids.Interner`),
and a posting is an ``int`` whose set bits are provider/demander/holder
ids.  Union, intersection, and difference in the maintenance paths are
single big-int ops; the frozenset/tuple query API every caller and
differential test depends on is preserved as decoding views that are
rebuilt only for the postings a mutation actually touched.  Because ids
are monotone, decoding a mask lowest-bit-first reproduces graph
insertion order, so the ordered tuples no longer need splice
bookkeeping of their own.

One :class:`EcosystemIndex` can back many :class:`AttackerIndex` views,
which is what the batch APIs (``TransformationDependencyGraph.analyze_many``,
``ActFort.batch``) exploit: the measurement study and the defense
evaluation analyze several attacker profiles over shared indexes instead
of rebuilding per profile.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Tuple,
)

from repro.core.ids import Interner, iter_ids, mask_of
from repro.model.attacker import AttackerCapability, AttackerProfile
from repro.model.factors import (
    CredentialFactor,
    PersonalInfoKind,
    info_satisfying_factor,
    is_robust_factor,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.tdg import TDGNode

#: Facts that can convince a customer-service agent (Case III's web path).
DOSSIER_KINDS: FrozenSet[PersonalInfoKind] = frozenset(
    {
        PersonalInfoKind.REAL_NAME,
        PersonalInfoKind.CITIZEN_ID,
        PersonalInfoKind.ADDRESS,
        PersonalInfoKind.CELLPHONE_NUMBER,
        PersonalInfoKind.EMAIL_ADDRESS,
        PersonalInfoKind.BANKCARD_NUMBER,
        PersonalInfoKind.ACQUAINTANCE_NAME,
        PersonalInfoKind.ORDER_HISTORY,
    }
)

#: Number of correct dossier facts a human agent demands.
DOSSIER_THRESHOLD = 3

#: Maskable credential factors: the info kind whose partial (masked) views
#: can be combined across providers to reconstruct the value (Insight 4),
#: plus the canonical value length the union must cover.
MASKABLE_FACTORS: Mapping[CredentialFactor, Tuple[PersonalInfoKind, int]] = {
    CredentialFactor.CITIZEN_ID: (PersonalInfoKind.CITIZEN_ID, 18),
    CredentialFactor.BANKCARD_NUMBER: (PersonalInfoKind.BANKCARD_NUMBER, 16),
}


class EcosystemIndex:
    """Attacker-independent inverted indexes over one node set.

    Node order is preserved everywhere (tuples follow the graph's insertion
    order) so that indexed queries enumerate providers in exactly the order
    the seed's linear scans did.  Postings are id bitmasks internally; the
    name-level attributes (``holders_of``, ``dossier_holders``, ...) are
    the decoding views.
    """

    def __init__(self, nodes: Mapping[str, "TDGNode"]) -> None:
        self.names: Tuple[str, ...] = tuple(nodes)
        self.name_set: FrozenSet[str] = frozenset(nodes)
        # The interner's ids are the monotone per-service ordinals that back
        # the in-place postings updates: additions intern fresh maxima,
        # removals retire the id forever, so decoding any posting mask
        # lowest-bit-first always reproduces the tuple order a from-scratch
        # rebuild would derive from insertion order.
        self.ids: Interner[str] = Interner(self.names)

        holder_masks: Dict[PersonalInfoKind, int] = {}
        dossier_mask = 0
        for position, node in enumerate(nodes.values()):
            bit = 1 << position
            for kind in node.pia:
                holder_masks[kind] = holder_masks.get(kind, 0) | bit
            if len(node.pia & DOSSIER_KINDS) >= DOSSIER_THRESHOLD:
                dossier_mask |= bit
        #: kind -> bitmask of holders exposing it in full (source of truth).
        self._holder_masks: Dict[PersonalInfoKind, int] = holder_masks
        #: kind -> insertion-ordered holders exposing it in full (decoding
        #: view of ``_holder_masks``).
        self.holders_of: Dict[PersonalInfoKind, Tuple[str, ...]] = {}  # decoded view
        self._holder_sets: Dict[PersonalInfoKind, FrozenSet[str]] = {}  # decoded view
        for kind in holder_masks:
            self._decode_holders(kind)
        self._dossier_mask: int = dossier_mask
        #: Services whose PIA clears the customer-service dossier bar
        #: (decoding views of ``_dossier_mask``).
        self._dossier_ordered: Tuple[str, ...] = self.ids.decode_mask_ordered(
            dossier_mask
        )
        self.dossier_holders: FrozenSet[str] = frozenset(self._dossier_ordered)

        # Partial (masked) views per maskable factor, in insertion order.
        # These carry a per-holder payload (the revealed positions), so they
        # stay ordered tuples -- spliced via bisect over the parallel
        # ordinal-key lists in ``_partial_keys``.
        partial: Dict[  # noqa -- carries per-holder position payloads
            CredentialFactor, List[Tuple[str, FrozenSet[int]]]
        ] = {factor: [] for factor in MASKABLE_FACTORS}
        for name, node in nodes.items():
            for factor, (kind, _length) in MASKABLE_FACTORS.items():
                positions = node.pia_partial.get(kind, frozenset())
                if positions:
                    partial[factor].append((name, positions))
        #: factor -> ((service, revealed positions), ...) for every service
        #: holding a non-empty masked view of the factor's value.
        self.partial_holders: Dict[  # noqa -- payload tuples (see above)
            CredentialFactor, Tuple[Tuple[str, FrozenSet[int]], ...]
        ] = {factor: tuple(views) for factor, views in partial.items()}
        self.partial_by_service: Dict[
            CredentialFactor, Dict[str, FrozenSet[int]]
        ] = {
            factor: dict(views) for factor, views in partial.items()
        }
        self._partial_keys: Dict[CredentialFactor, List[int]] = {
            factor: [self.ids.id_of(name) for name, _positions in views]
            for factor, views in partial.items()
        }
        # Combinability-excluding-one-service in O(1): a position is lost by
        # excluding service ``s`` only if ``s`` is its sole holder.
        self._partial_union: Dict[CredentialFactor, FrozenSet[int]] = {}
        self._unique_coverage: Dict[CredentialFactor, Dict[str, int]] = {}
        #: factor -> {service: revealed-position bitmask} -- the combining
        #: checks union these ints instead of position frozensets.
        self._partial_masks: Dict[CredentialFactor, Dict[str, int]] = {}
        for factor in MASKABLE_FACTORS:
            self._recount_partial(factor)

        # Reverse-dependency postings: who *consumes* a factor / provider.
        demander_masks: Dict[CredentialFactor, int] = {}
        linked_masks: Dict[str, int] = {}
        for position, node in enumerate(nodes.values()):
            bit = 1 << position
            for factor in self._node_demands(node):
                demander_masks[factor] = demander_masks.get(factor, 0) | bit
            for provider in self._node_links(node):
                linked_masks[provider] = linked_masks.get(provider, 0) | bit
        #: factor -> bitmask of services with a takeover path demanding it.
        self._demander_masks: Dict[CredentialFactor, int] = demander_masks
        #: identity provider -> bitmask of services accepting it on a
        #: linked-account path.
        self._linked_masks: Dict[str, int] = linked_masks
        # Lazily decoded frozen views of the two masks above, cached so the
        # fixpoint inner loops (which read the same factor's demanders
        # thousands of times per absorb) never re-wrap a frozenset per call.
        self._demander_views: Dict[CredentialFactor, FrozenSet[str]] = {}  # decoded view
        self._linked_views: Dict[str, FrozenSet[str]] = {}  # decoded view

    @staticmethod
    def _node_demands(node: "TDGNode") -> FrozenSet[CredentialFactor]:
        """Factors demanded by at least one of the node's takeover paths."""
        return frozenset(
            factor for path in node.takeover_paths for factor in path.factors
        )

    @staticmethod
    def _node_links(node: "TDGNode") -> FrozenSet[str]:
        """Identity providers accepted by the node's linked-account paths."""
        return frozenset(
            provider
            for path in node.takeover_paths
            for provider in path.linked_providers
        )

    # ------------------------------------------------------------------
    # Decoding views (mask -> names; rebuilt only for touched postings)
    # ------------------------------------------------------------------

    def _decode_holders(self, kind: PersonalInfoKind) -> None:
        """Refresh the name-level views of one holder posting from its mask
        (dropping them when the last holder is gone)."""
        mask = self._holder_masks.get(kind, 0)
        if mask:
            ordered = self.ids.decode_mask_ordered(mask)
            self.holders_of[kind] = ordered
            self._holder_sets[kind] = frozenset(ordered)
        else:
            self._holder_masks.pop(kind, None)
            self.holders_of.pop(kind, None)
            self._holder_sets.pop(kind, None)

    def demanders(self, factor: CredentialFactor) -> FrozenSet[str]:
        """Services with a takeover path demanding ``factor`` (a cached
        frozen view; no per-call allocation)."""
        view = self._demander_views.get(factor)
        if view is None:
            view = self.ids.decode_mask(self._demander_masks.get(factor, 0))
            self._demander_views[factor] = view
        return view

    def demanders_mask(self, factor: CredentialFactor) -> int:
        """Bitmask form of :meth:`demanders`."""
        return self._demander_masks.get(factor, 0)

    def demanded_factors(self) -> Tuple[CredentialFactor, ...]:
        """Factors demanded by at least one takeover path."""
        return tuple(self._demander_masks)

    def ordinal_of(self, name: str) -> int:
        """The service's monotone insertion ordinal (== its interned id).

        Ordinals only grow: an added service always receives a fresh
        maximum (even one re-added under a name that was removed earlier),
        and a removal retires its ordinal forever.  Sorting by ordinal
        therefore reproduces graph insertion order at *any* version, which
        is what lets the record-stream cursors of
        :mod:`repro.streams` carry a segment watermark that stays
        meaningful across mutations: every segment a consumer has already
        drained keeps a strictly smaller ordinal than every segment still
        ahead of it, no matter how the node set churns in between.
        """
        return self.ids.id_of(name)

    def linked_consumers_of(self, provider: str) -> FrozenSet[str]:
        """Services accepting ``provider`` on a ``LINKED_ACCOUNT`` path
        (a cached frozen view; no per-call allocation)."""
        view = self._linked_views.get(provider)
        if view is None:
            view = self.ids.decode_mask(self._linked_masks.get(provider, 0))
            self._linked_views[provider] = view
        return view

    def linked_consumers_mask(self, provider: str) -> int:
        """Bitmask form of :meth:`linked_consumers_of`."""
        return self._linked_masks.get(provider, 0)

    def linked_providers(self) -> Tuple[str, ...]:
        """Identity providers accepted by at least one linked path."""
        return tuple(self._linked_masks)

    def decode_mask(self, mask: int) -> FrozenSet[str]:
        """Decode a service-id bitmask to the frozenset of names."""
        return self.ids.decode_mask(mask)

    def decode_mask_ordered(self, mask: int) -> Tuple[str, ...]:
        """Decode a service-id bitmask to names in insertion order."""
        return self.ids.decode_mask_ordered(mask)

    def encode_names(self, names) -> int:
        """The bitmask of the given (live) service names."""
        return self.ids.encode_live(names)

    def _recount_partial(self, factor: CredentialFactor) -> None:
        """Rebuild the combinability summaries for one maskable factor from
        its current masked-view postings (cheap: views are few)."""
        views = self.partial_holders[factor]
        position_masks = [mask_of(positions) for _name, positions in views]
        once = 0
        twice = 0
        for view_mask in position_masks:
            twice |= once & view_mask
            once |= view_mask
        self._partial_union[factor] = frozenset(iter_ids(once))
        solo = once & ~twice
        unique: Dict[str, int] = {}
        masks: Dict[str, int] = {}
        for (name, _positions), view_mask in zip(views, position_masks):
            masks[name] = view_mask
            only_here = (view_mask & solo).bit_count()
            if only_here:
                unique[name] = only_here
        self._unique_coverage[factor] = unique
        self._partial_masks[factor] = masks

    # ------------------------------------------------------------------
    # In-place maintenance (the incremental engine's hooks)
    # ------------------------------------------------------------------

    def _insert_position(self, keys: List[int], name: str) -> int:
        """Where ``name`` lands among a posting's ordinal-sorted parallel
        key list: one :func:`bisect.bisect_left`, O(log n)."""
        return bisect_left(keys, self.ids.id_of(name))

    def apply_node_change(
        self,
        name: str,
        old: "TDGNode | None",
        new: "TDGNode | None",
    ) -> None:
        """Update every posting in place for one node change.

        ``old is None`` means an addition (appended at the end of the graph
        order), ``new is None`` a removal, both non-None a replacement in
        place.  After the call the index is view-for-view identical to a
        fresh :class:`EcosystemIndex` over the mutated node set: decoded
        tuples stay sorted by service ordinal, holder keys exist only while
        they have at least one holder, and the combinability summaries are
        recounted for exactly the maskable factors whose views changed.
        (The masks themselves may differ from a fresh build's -- a fresh
        interner never saw the retired ids -- which is why equivalence is
        asserted on the decoded views.)
        """
        if old is None and new is None:
            raise ValueError("node change must have at least one side")
        if old is None:
            if name in self.ids:
                raise ValueError(f"duplicate node {name!r}")
            bit = 1 << self.ids.intern(name)
            self.names = self.names + (name,)
            self.name_set = self.name_set | {name}
        else:
            bit = 1 << self.ids.id_of(name)
            if new is None:
                self.names = tuple(n for n in self.names if n != name)
                self.name_set = self.name_set - {name}

        old_pia = old.pia if old is not None else frozenset()
        new_pia = new.pia if new is not None else frozenset()
        for kind in old_pia - new_pia:
            self._holder_masks[kind] &= ~bit
            self._decode_holders(kind)
        for kind in new_pia - old_pia:
            self._holder_masks[kind] = self._holder_masks.get(kind, 0) | bit
            self._decode_holders(kind)

        was_dossier = len(old_pia & DOSSIER_KINDS) >= DOSSIER_THRESHOLD and (
            old is not None
        )
        is_dossier = len(new_pia & DOSSIER_KINDS) >= DOSSIER_THRESHOLD and (
            new is not None
        )
        if was_dossier != is_dossier:
            if is_dossier:
                self._dossier_mask |= bit
            else:
                self._dossier_mask &= ~bit
            self._dossier_ordered = self.ids.decode_mask_ordered(
                self._dossier_mask
            )
            self.dossier_holders = frozenset(self._dossier_ordered)

        for factor, (kind, _length) in MASKABLE_FACTORS.items():
            old_positions = (
                old.pia_partial.get(kind, frozenset())
                if old is not None
                else frozenset()
            )
            new_positions = (
                new.pia_partial.get(kind, frozenset())
                if new is not None
                else frozenset()
            )
            if old_positions == new_positions:
                continue
            views = list(self.partial_holders[factor])
            keys = self._partial_keys[factor]
            if old_positions:
                at = bisect_left(keys, self.ids.id_of(name))
                del views[at]
                del keys[at]
            if new_positions:
                at = self._insert_position(keys, name)
                views.insert(at, (name, new_positions))
                keys.insert(at, self.ids.id_of(name))
                self.partial_by_service[factor][name] = new_positions
            else:
                self.partial_by_service[factor].pop(name, None)
            self.partial_holders[factor] = tuple(views)
            self._recount_partial(factor)

        old_demands = (
            self._node_demands(old) if old is not None else frozenset()
        )
        new_demands = (
            self._node_demands(new) if new is not None else frozenset()
        )
        for factor in old_demands - new_demands:
            remaining = self._demander_masks[factor] & ~bit
            if remaining:
                self._demander_masks[factor] = remaining
            else:
                del self._demander_masks[factor]
            self._demander_views.pop(factor, None)
        for factor in new_demands - old_demands:
            self._demander_masks[factor] = (
                self._demander_masks.get(factor, 0) | bit
            )
            self._demander_views.pop(factor, None)

        old_links = self._node_links(old) if old is not None else frozenset()
        new_links = self._node_links(new) if new is not None else frozenset()
        for provider in old_links - new_links:
            remaining = self._linked_masks[provider] & ~bit
            if remaining:
                self._linked_masks[provider] = remaining
            else:
                del self._linked_masks[provider]
            self._linked_views.pop(provider, None)
        for provider in new_links - old_links:
            self._linked_masks[provider] = (
                self._linked_masks.get(provider, 0) | bit
            )
            self._linked_views.pop(provider, None)

        if new is None:
            self.ids.retire(name)

    def holder_set(self, kind: PersonalInfoKind) -> FrozenSet[str]:
        """Services exposing ``kind`` in full."""
        return self._holder_sets.get(kind, frozenset())

    def holder_mask(self, kind: PersonalInfoKind) -> int:
        """Bitmask form of :meth:`holder_set`."""
        return self._holder_masks.get(kind, 0)

    def partial_position_masks(self, factor: CredentialFactor) -> Dict[str, int]:
        """Per-service revealed-position bitmasks for one maskable factor
        (the int form of ``partial_by_service``)."""
        return self._partial_masks[factor]

    def combinability_profile(
        self, factor: CredentialFactor
    ) -> Tuple[int, Dict[str, int]]:
        """The pair :meth:`combinable_excluding` answers derive from: the
        covered-position count over every masked view, and each holder's
        uniquely-held position count.  Snapshotting and diffing this is
        how the level engine decides whose coverage a masking change can
        actually flip."""
        return (
            len(self._partial_union[factor]),
            dict(self._unique_coverage[factor]),
        )

    def combinable_excluding(
        self, factor: CredentialFactor, excluded: str
    ) -> bool:
        """Whether masked views pooled from *every* node except ``excluded``
        reconstruct ``factor``'s full value (Insight 4 over the whole graph)."""
        maskable = MASKABLE_FACTORS.get(factor)
        if maskable is None:
            return False
        _kind, length = maskable
        union = self._partial_union[factor]
        lost = self._unique_coverage[factor].get(excluded, 0)
        return len(union) - lost >= length

    def view(self, attacker: AttackerProfile) -> "AttackerIndex":
        """Build the per-profile factor->provider index."""
        return AttackerIndex(self, attacker)


class AttackerIndex:
    """factor -> providers, resolved under one attacker profile.

    ``LINKED_ACCOUNT`` is the one path-dependent factor (the accepted
    identity providers are a property of the path); it is resolved lazily in
    :meth:`provider_names` / :meth:`providers_ordered`.  Static postings
    are id bitmasks assembled from the ecosystem's holder masks; the
    frozenset/tuple forms are their decoding views.
    """

    def __init__(
        self, ecosystem: EcosystemIndex, attacker: AttackerProfile
    ) -> None:
        self.ecosystem = ecosystem
        self.attacker = attacker
        self.innate = attacker.innately_satisfiable()
        self.can_social_engineer = (
            AttackerCapability.SOCIAL_ENGINEERING in attacker.capabilities
        )
        email_channel = (
            AttackerCapability.EMAIL_CHANNEL_AFTER_COMPROMISE
            in attacker.capabilities
        )
        self._email_channel = email_channel
        self._static_masks: Dict[CredentialFactor, int] = {}
        self._static: Dict[CredentialFactor, FrozenSet[str]] = {}  # decoded view
        self._static_ordered: Dict[CredentialFactor, Tuple[str, ...]] = {}  # decoded view
        for factor in CredentialFactor:
            if factor is CredentialFactor.LINKED_ACCOUNT:
                continue  # path-dependent; resolved per query
            if is_robust_factor(factor) or factor is CredentialFactor.PASSWORD:
                mask = 0
            elif factor in (
                CredentialFactor.EMAIL_CODE,
                CredentialFactor.EMAIL_LINK,
            ):
                mask = (
                    ecosystem.holder_mask(PersonalInfoKind.MAILBOX_ACCESS)
                    if email_channel
                    else 0
                )
            elif factor is CredentialFactor.CUSTOMER_SERVICE:
                mask = (
                    ecosystem._dossier_mask if self.can_social_engineer else 0
                )
            else:
                mask = 0
                for kind in info_satisfying_factor(factor):
                    mask |= ecosystem.holder_mask(kind)
            self._static_masks[factor] = mask
            self._decode_static(factor)

    def _decode_static(self, factor: CredentialFactor) -> None:
        """Refresh one factor's name-level views from its provider mask."""
        ordered = self.ecosystem.ids.decode_mask_ordered(
            self._static_masks[factor]
        )
        self._static_ordered[factor] = ordered
        self._static[factor] = frozenset(ordered)

    def provided_factors(self, node: "TDGNode") -> FrozenSet[CredentialFactor]:
        """Path-independent factors ``node`` provides under this profile.

        This is the membership rule behind the per-factor postings of
        ``__init__`` restated per node, which is what lets the incremental
        engine splice a single node's changes into the postings instead of
        rebuilding them (``LINKED_ACCOUNT`` stays path-resolved and robust
        factors and passwords are never provided, exactly as at build
        time).
        """
        provided = set()
        for factor in CredentialFactor:
            if factor is CredentialFactor.LINKED_ACCOUNT:
                continue
            if is_robust_factor(factor) or factor is CredentialFactor.PASSWORD:
                continue
            if factor in (
                CredentialFactor.EMAIL_CODE,
                CredentialFactor.EMAIL_LINK,
            ):
                if self._email_channel and (
                    PersonalInfoKind.MAILBOX_ACCESS in node.pia
                ):
                    provided.add(factor)
            elif factor is CredentialFactor.CUSTOMER_SERVICE:
                if self.can_social_engineer and (
                    len(node.pia & DOSSIER_KINDS) >= DOSSIER_THRESHOLD
                ):
                    provided.add(factor)
            elif node.pia & info_satisfying_factor(factor):
                provided.add(factor)
        return frozenset(provided)

    def update_for_node(
        self,
        name: str,
        old: "TDGNode | None",
        new: "TDGNode | None",
    ) -> FrozenSet[CredentialFactor]:
        """Splice one node change into the per-factor provider postings.

        Must run *after* the backing :class:`EcosystemIndex` has absorbed
        the same change (additions need the new service's id, and a removed
        service's id must still decode -- it does; the decode table is
        append-only).  Returns the factors whose provider sets changed --
        the seed of the graph-cache invalidation.
        """
        old_factors = (
            self.provided_factors(old) if old is not None else frozenset()
        )
        new_factors = (
            self.provided_factors(new) if new is not None else frozenset()
        )
        if old_factors == new_factors:
            return frozenset()
        for factor in old_factors - new_factors:
            self._static_masks[factor] &= ~self._bit_of(name)
            self._decode_static(factor)
        for factor in new_factors - old_factors:
            self._static_masks[factor] |= self._bit_of(name)
            self._decode_static(factor)
        return old_factors ^ new_factors

    def _bit_of(self, name: str) -> int:
        """The service's id bit.  Uses the latest-ever id so that removal
        splices still work after the ecosystem retired the id (this hook
        runs second)."""
        return 1 << self.ecosystem.ids.latest_id(name)

    def static_provider_set(self, factor: CredentialFactor) -> FrozenSet[str]:
        """Providers of a path-independent factor, with no exclusion.

        Raises ``KeyError`` for ``LINKED_ACCOUNT`` (whose providers are a
        property of the path); callers gate on that factor first.
        """
        return self._static[factor]

    def static_provider_mask(self, factor: CredentialFactor) -> int:
        """Bitmask form of :meth:`static_provider_set`."""
        return self._static_masks[factor]

    def static_providers_ordered(
        self, factor: CredentialFactor
    ) -> Tuple[str, ...]:
        """Like :meth:`static_provider_set`, in graph insertion order."""
        return self._static_ordered[factor]

    def provider_names(self, factor: CredentialFactor, path) -> FrozenSet[str]:
        """Services providing ``factor`` for ``path``, excluding the path's
        own service (a node never parents itself)."""
        if factor is CredentialFactor.LINKED_ACCOUNT:
            base = path.linked_providers & self.ecosystem.name_set
        else:
            base = self._static[factor]
        if path.service in base:
            return base - {path.service}
        return base

    def provider_mask(self, factor: CredentialFactor, path) -> int:
        """Bitmask form of :meth:`provider_names` (path's own service bit
        cleared)."""
        if factor is CredentialFactor.LINKED_ACCOUNT:
            mask = self.ecosystem.ids.encode_live(path.linked_providers)
        else:
            mask = self._static_masks[factor]
        own = self.ecosystem.ids.get(path.service)
        if own is not None:
            mask &= ~(1 << own)
        return mask

    def providers_ordered(
        self, factor: CredentialFactor, path
    ) -> Tuple[str, ...]:
        """Like :meth:`provider_names` but in graph insertion order, matching
        the enumeration order of the seed's linear scans."""
        if factor is CredentialFactor.LINKED_ACCOUNT:
            return self.ecosystem.ids.decode_mask_ordered(
                self.provider_mask(factor, path)
            )
        ordered = self._static_ordered[factor]
        if path.service in self._static[factor]:
            return tuple(name for name in ordered if name != path.service)
        return ordered
