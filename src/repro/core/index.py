"""Inverted indexes over a TDG node set -- the indexed TDG engine.

The seed implementation of :mod:`repro.core.tdg` answered every
"who can provide factor F?" question by rescanning all nodes, which made
Transformation Dependency Graph construction quadratic-to-cubic in
ecosystem size.  This module precomputes the two inversions the graph
queries over and over:

- :class:`EcosystemIndex` -- **attacker-independent** structure: for each
  personal-information kind, which services expose it in full
  (``holders_of``); for each maskable credential factor, which services
  hold a partial (masked) view and which character positions each view
  reveals (Insight 4's combining inputs); which services can feed a
  customer-service dossier; which services yield mailbox access.  It also
  carries the **reverse-dependency postings** the incremental level
  engine's delta-BFS walks forward: for each credential factor, which
  services *demand* it on some takeover path (``demanders``), and for
  each identity provider, which services accept it on a
  ``LINKED_ACCOUNT`` path (``linked_consumers_of``).
- :class:`AttackerIndex` -- one **per attacker profile**: for each
  credential factor, the exact set (and insertion-ordered tuple) of
  services that provide it under that profile's capabilities.  The
  provider semantics are bit-for-bit those of
  :meth:`~repro.core.tdg.TransformationDependencyGraph.provides`; the
  differential suite in ``tests/test_tdg_equivalence.py`` locks the
  equivalence against the brute-force reference.

One :class:`EcosystemIndex` can back many :class:`AttackerIndex` views,
which is what the batch APIs (``TransformationDependencyGraph.analyze_many``,
``ActFort.batch``) exploit: the measurement study and the defense
evaluation analyze several attacker profiles over shared indexes instead
of rebuilding per profile.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Set,
    Tuple,
)

from repro.model.attacker import AttackerCapability, AttackerProfile
from repro.model.factors import (
    CredentialFactor,
    PersonalInfoKind,
    info_satisfying_factor,
    is_robust_factor,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.tdg import TDGNode

#: Facts that can convince a customer-service agent (Case III's web path).
DOSSIER_KINDS: FrozenSet[PersonalInfoKind] = frozenset(
    {
        PersonalInfoKind.REAL_NAME,
        PersonalInfoKind.CITIZEN_ID,
        PersonalInfoKind.ADDRESS,
        PersonalInfoKind.CELLPHONE_NUMBER,
        PersonalInfoKind.EMAIL_ADDRESS,
        PersonalInfoKind.BANKCARD_NUMBER,
        PersonalInfoKind.ACQUAINTANCE_NAME,
        PersonalInfoKind.ORDER_HISTORY,
    }
)

#: Number of correct dossier facts a human agent demands.
DOSSIER_THRESHOLD = 3

#: Maskable credential factors: the info kind whose partial (masked) views
#: can be combined across providers to reconstruct the value (Insight 4),
#: plus the canonical value length the union must cover.
MASKABLE_FACTORS: Mapping[CredentialFactor, Tuple[PersonalInfoKind, int]] = {
    CredentialFactor.CITIZEN_ID: (PersonalInfoKind.CITIZEN_ID, 18),
    CredentialFactor.BANKCARD_NUMBER: (PersonalInfoKind.BANKCARD_NUMBER, 16),
}


class EcosystemIndex:
    """Attacker-independent inverted indexes over one node set.

    Node order is preserved everywhere (tuples follow the graph's insertion
    order) so that indexed queries enumerate providers in exactly the order
    the seed's linear scans did.
    """

    def __init__(self, nodes: Mapping[str, "TDGNode"]) -> None:
        self.names: Tuple[str, ...] = tuple(nodes)
        self.name_set: FrozenSet[str] = frozenset(nodes)
        # Monotone per-service ordinals back the in-place postings updates:
        # additions append (fresh max ordinal), removals keep the survivors'
        # relative order, so sorting by ordinal always reproduces the tuple
        # order a from-scratch rebuild would derive from insertion order.
        self._ordinal: Dict[str, int] = {
            name: position for position, name in enumerate(self.names)
        }
        self._next_ordinal: int = len(self.names)

        holders: Dict[PersonalInfoKind, List[str]] = {}
        dossier: List[str] = []
        for name, node in nodes.items():
            for kind in node.pia:
                holders.setdefault(kind, []).append(name)
            if len(node.pia & DOSSIER_KINDS) >= DOSSIER_THRESHOLD:
                dossier.append(name)
        #: kind -> insertion-ordered holders exposing it in full.
        self.holders_of: Dict[PersonalInfoKind, Tuple[str, ...]] = {
            kind: tuple(names) for kind, names in holders.items()
        }
        self._holder_sets: Dict[PersonalInfoKind, FrozenSet[str]] = {
            kind: frozenset(names) for kind, names in holders.items()
        }
        #: Services whose PIA clears the customer-service dossier bar.
        self.dossier_holders: FrozenSet[str] = frozenset(dossier)
        self._dossier_ordered: Tuple[str, ...] = tuple(dossier)

        # Partial (masked) views per maskable factor, in insertion order.
        partial: Dict[
            CredentialFactor, List[Tuple[str, FrozenSet[int]]]
        ] = {factor: [] for factor in MASKABLE_FACTORS}
        for name, node in nodes.items():
            for factor, (kind, _length) in MASKABLE_FACTORS.items():
                positions = node.pia_partial.get(kind, frozenset())
                if positions:
                    partial[factor].append((name, positions))
        #: factor -> ((service, revealed positions), ...) for every service
        #: holding a non-empty masked view of the factor's value.
        self.partial_holders: Dict[
            CredentialFactor, Tuple[Tuple[str, FrozenSet[int]], ...]
        ] = {factor: tuple(views) for factor, views in partial.items()}
        self.partial_by_service: Dict[
            CredentialFactor, Dict[str, FrozenSet[int]]
        ] = {
            factor: dict(views) for factor, views in partial.items()
        }
        # Combinability-excluding-one-service in O(1): a position is lost by
        # excluding service ``s`` only if ``s`` is its sole holder.
        self._partial_union: Dict[CredentialFactor, FrozenSet[int]] = {}
        self._unique_coverage: Dict[CredentialFactor, Dict[str, int]] = {}
        for factor in MASKABLE_FACTORS:
            self._recount_partial(factor)

        # Reverse-dependency postings: who *consumes* a factor / provider.
        demanders: Dict[CredentialFactor, Set[str]] = {}
        linked: Dict[str, Set[str]] = {}
        for name, node in nodes.items():
            for factor in self._node_demands(node):
                demanders.setdefault(factor, set()).add(name)
            for provider in self._node_links(node):
                linked.setdefault(provider, set()).add(name)
        #: factor -> services with a takeover path demanding it.
        self.demanders_by_factor: Dict[CredentialFactor, Set[str]] = demanders
        #: identity provider -> services accepting it on a linked path.
        self.linked_consumers: Dict[str, Set[str]] = linked

    @staticmethod
    def _node_demands(node: "TDGNode") -> FrozenSet[CredentialFactor]:
        """Factors demanded by at least one of the node's takeover paths."""
        return frozenset(
            factor for path in node.takeover_paths for factor in path.factors
        )

    @staticmethod
    def _node_links(node: "TDGNode") -> FrozenSet[str]:
        """Identity providers accepted by the node's linked-account paths."""
        return frozenset(
            provider
            for path in node.takeover_paths
            for provider in path.linked_providers
        )

    def demanders(self, factor: CredentialFactor) -> FrozenSet[str]:
        """Services with a takeover path demanding ``factor``."""
        names = self.demanders_by_factor.get(factor)
        return frozenset(names) if names else frozenset()

    def ordinal_of(self, name: str) -> int:
        """The service's monotone insertion ordinal.

        Ordinals only grow: an added service always receives a fresh
        maximum (even one re-added under a name that was removed earlier),
        and a removal retires its ordinal forever.  Sorting by ordinal
        therefore reproduces graph insertion order at *any* version, which
        is what lets the record-stream cursors of
        :mod:`repro.streams` carry a segment watermark that stays
        meaningful across mutations: every segment a consumer has already
        drained keeps a strictly smaller ordinal than every segment still
        ahead of it, no matter how the node set churns in between.
        """
        return self._ordinal[name]

    def linked_consumers_of(self, provider: str) -> FrozenSet[str]:
        """Services accepting ``provider`` on a ``LINKED_ACCOUNT`` path."""
        names = self.linked_consumers.get(provider)
        return frozenset(names) if names else frozenset()

    def _recount_partial(self, factor: CredentialFactor) -> None:
        """Rebuild the combinability summaries for one maskable factor from
        its current masked-view postings (cheap: views are few)."""
        views = self.partial_holders[factor]
        counts: Dict[int, int] = {}
        for _name, positions in views:
            for position in positions:
                counts[position] = counts.get(position, 0) + 1
        self._partial_union[factor] = frozenset(counts)
        unique: Dict[str, int] = {}
        for name, positions in views:
            only_here = sum(1 for p in positions if counts[p] == 1)
            if only_here:
                unique[name] = only_here
        self._unique_coverage[factor] = unique

    # ------------------------------------------------------------------
    # In-place maintenance (the incremental engine's hooks)
    # ------------------------------------------------------------------

    def _insert_position(self, existing_names, name: str) -> int:
        """Where ``name`` lands among ordinal-sorted ``existing_names``."""
        key = self._ordinal[name]
        index = 0
        for existing in existing_names:
            if self._ordinal[existing] < key:
                index += 1
            else:
                break
        return index

    def splice_name(
        self, ordered: Tuple[str, ...], name: str
    ) -> Tuple[str, ...]:
        """Insert ``name`` into an ordinal-sorted name tuple at the position
        a from-scratch rebuild would give it."""
        index = self._insert_position(ordered, name)
        return ordered[:index] + (name,) + ordered[index:]

    def apply_node_change(
        self,
        name: str,
        old: "TDGNode | None",
        new: "TDGNode | None",
    ) -> None:
        """Update every posting list in place for one node change.

        ``old is None`` means an addition (appended at the end of the graph
        order), ``new is None`` a removal, both non-None a replacement in
        place.  After the call the index is field-for-field identical to a
        fresh :class:`EcosystemIndex` over the mutated node set: entries
        stay sorted by service ordinal, holder keys exist only while they
        have at least one holder, and the combinability summaries are
        recounted for exactly the maskable factors whose views changed.
        """
        if old is None and new is None:
            raise ValueError("node change must have at least one side")
        if old is None:
            if name in self._ordinal:
                raise ValueError(f"duplicate node {name!r}")
            self._ordinal[name] = self._next_ordinal
            self._next_ordinal += 1
            self.names = self.names + (name,)
            self.name_set = self.name_set | {name}
        elif new is None:
            self.names = tuple(n for n in self.names if n != name)
            self.name_set = self.name_set - {name}

        old_pia = old.pia if old is not None else frozenset()
        new_pia = new.pia if new is not None else frozenset()
        for kind in old_pia - new_pia:
            remaining = tuple(n for n in self.holders_of[kind] if n != name)
            if remaining:
                self.holders_of[kind] = remaining
                self._holder_sets[kind] = frozenset(remaining)
            else:
                del self.holders_of[kind]
                del self._holder_sets[kind]
        for kind in new_pia - old_pia:
            ordered = self.splice_name(self.holders_of.get(kind, ()), name)
            self.holders_of[kind] = ordered
            self._holder_sets[kind] = frozenset(ordered)

        was_dossier = len(old_pia & DOSSIER_KINDS) >= DOSSIER_THRESHOLD and (
            old is not None
        )
        is_dossier = len(new_pia & DOSSIER_KINDS) >= DOSSIER_THRESHOLD and (
            new is not None
        )
        if was_dossier and not is_dossier:
            self._dossier_ordered = tuple(
                n for n in self._dossier_ordered if n != name
            )
            self.dossier_holders = frozenset(self._dossier_ordered)
        elif is_dossier and not was_dossier:
            self._dossier_ordered = self.splice_name(
                self._dossier_ordered, name
            )
            self.dossier_holders = frozenset(self._dossier_ordered)

        for factor, (kind, _length) in MASKABLE_FACTORS.items():
            old_positions = (
                old.pia_partial.get(kind, frozenset())
                if old is not None
                else frozenset()
            )
            new_positions = (
                new.pia_partial.get(kind, frozenset())
                if new is not None
                else frozenset()
            )
            if old_positions == new_positions:
                continue
            views = [
                view for view in self.partial_holders[factor] if view[0] != name
            ]
            if new_positions:
                index = self._insert_position(
                    (view_name for view_name, _positions in views), name
                )
                views.insert(index, (name, new_positions))
                self.partial_by_service[factor][name] = new_positions
            else:
                self.partial_by_service[factor].pop(name, None)
            self.partial_holders[factor] = tuple(views)
            self._recount_partial(factor)

        old_demands = (
            self._node_demands(old) if old is not None else frozenset()
        )
        new_demands = (
            self._node_demands(new) if new is not None else frozenset()
        )
        for factor in old_demands - new_demands:
            names = self.demanders_by_factor[factor]
            names.discard(name)
            if not names:
                del self.demanders_by_factor[factor]
        for factor in new_demands - old_demands:
            self.demanders_by_factor.setdefault(factor, set()).add(name)

        old_links = self._node_links(old) if old is not None else frozenset()
        new_links = self._node_links(new) if new is not None else frozenset()
        for provider in old_links - new_links:
            names = self.linked_consumers[provider]
            names.discard(name)
            if not names:
                del self.linked_consumers[provider]
        for provider in new_links - old_links:
            self.linked_consumers.setdefault(provider, set()).add(name)

        if new is None:
            del self._ordinal[name]

    def holder_set(self, kind: PersonalInfoKind) -> FrozenSet[str]:
        """Services exposing ``kind`` in full."""
        return self._holder_sets.get(kind, frozenset())

    def combinability_profile(
        self, factor: CredentialFactor
    ) -> Tuple[int, Dict[str, int]]:
        """The pair :meth:`combinable_excluding` answers derive from: the
        covered-position count over every masked view, and each holder's
        uniquely-held position count.  Snapshotting and diffing this is
        how the level engine decides whose coverage a masking change can
        actually flip."""
        return (
            len(self._partial_union[factor]),
            dict(self._unique_coverage[factor]),
        )

    def combinable_excluding(
        self, factor: CredentialFactor, excluded: str
    ) -> bool:
        """Whether masked views pooled from *every* node except ``excluded``
        reconstruct ``factor``'s full value (Insight 4 over the whole graph)."""
        maskable = MASKABLE_FACTORS.get(factor)
        if maskable is None:
            return False
        _kind, length = maskable
        union = self._partial_union[factor]
        lost = self._unique_coverage[factor].get(excluded, 0)
        return len(union) - lost >= length

    def view(self, attacker: AttackerProfile) -> "AttackerIndex":
        """Build the per-profile factor->provider index."""
        return AttackerIndex(self, attacker)


class AttackerIndex:
    """factor -> providers, resolved under one attacker profile.

    ``LINKED_ACCOUNT`` is the one path-dependent factor (the accepted
    identity providers are a property of the path); it is resolved lazily in
    :meth:`provider_names` / :meth:`providers_ordered`.
    """

    def __init__(
        self, ecosystem: EcosystemIndex, attacker: AttackerProfile
    ) -> None:
        self.ecosystem = ecosystem
        self.attacker = attacker
        self.innate = attacker.innately_satisfiable()
        self.can_social_engineer = (
            AttackerCapability.SOCIAL_ENGINEERING in attacker.capabilities
        )
        email_channel = (
            AttackerCapability.EMAIL_CHANNEL_AFTER_COMPROMISE
            in attacker.capabilities
        )
        self._email_channel = email_channel
        self._static: Dict[CredentialFactor, FrozenSet[str]] = {}
        self._static_ordered: Dict[CredentialFactor, Tuple[str, ...]] = {}
        for factor in CredentialFactor:
            if factor is CredentialFactor.LINKED_ACCOUNT:
                continue  # path-dependent; resolved per query
            if is_robust_factor(factor) or factor is CredentialFactor.PASSWORD:
                ordered: Tuple[str, ...] = ()
            elif factor in (
                CredentialFactor.EMAIL_CODE,
                CredentialFactor.EMAIL_LINK,
            ):
                ordered = (
                    ecosystem.holders_of.get(
                        PersonalInfoKind.MAILBOX_ACCESS, ()
                    )
                    if email_channel
                    else ()
                )
            elif factor is CredentialFactor.CUSTOMER_SERVICE:
                ordered = (
                    ecosystem._dossier_ordered
                    if self.can_social_engineer
                    else ()
                )
            else:
                kinds = info_satisfying_factor(factor)
                if len(kinds) <= 1:
                    ordered = (
                        ecosystem.holders_of.get(next(iter(kinds)), ())
                        if kinds
                        else ()
                    )
                else:
                    merged = frozenset().union(
                        *(ecosystem.holder_set(kind) for kind in kinds)
                    )
                    ordered = tuple(
                        name for name in ecosystem.names if name in merged
                    )
            self._static_ordered[factor] = ordered
            self._static[factor] = frozenset(ordered)

    def provided_factors(self, node: "TDGNode") -> FrozenSet[CredentialFactor]:
        """Path-independent factors ``node`` provides under this profile.

        This is the membership rule behind the per-factor postings of
        ``__init__`` restated per node, which is what lets the incremental
        engine splice a single node's changes into the postings instead of
        rebuilding them (``LINKED_ACCOUNT`` stays path-resolved and robust
        factors and passwords are never provided, exactly as at build
        time).
        """
        provided = set()
        for factor in CredentialFactor:
            if factor is CredentialFactor.LINKED_ACCOUNT:
                continue
            if is_robust_factor(factor) or factor is CredentialFactor.PASSWORD:
                continue
            if factor in (
                CredentialFactor.EMAIL_CODE,
                CredentialFactor.EMAIL_LINK,
            ):
                if self._email_channel and (
                    PersonalInfoKind.MAILBOX_ACCESS in node.pia
                ):
                    provided.add(factor)
            elif factor is CredentialFactor.CUSTOMER_SERVICE:
                if self.can_social_engineer and (
                    len(node.pia & DOSSIER_KINDS) >= DOSSIER_THRESHOLD
                ):
                    provided.add(factor)
            elif node.pia & info_satisfying_factor(factor):
                provided.add(factor)
        return frozenset(provided)

    def update_for_node(
        self,
        name: str,
        old: "TDGNode | None",
        new: "TDGNode | None",
    ) -> FrozenSet[CredentialFactor]:
        """Splice one node change into the per-factor provider postings.

        Must run *after* the backing :class:`EcosystemIndex` has absorbed
        the same change (additions need the new service's ordinal).
        Returns the factors whose provider sets changed -- the seed of the
        graph-cache invalidation.
        """
        old_factors = (
            self.provided_factors(old) if old is not None else frozenset()
        )
        new_factors = (
            self.provided_factors(new) if new is not None else frozenset()
        )
        for factor in old_factors - new_factors:
            ordered = tuple(
                n for n in self._static_ordered[factor] if n != name
            )
            self._static_ordered[factor] = ordered
            self._static[factor] = frozenset(ordered)
        for factor in new_factors - old_factors:
            ordered = self.ecosystem.splice_name(
                self._static_ordered[factor], name
            )
            self._static_ordered[factor] = ordered
            self._static[factor] = frozenset(ordered)
        return old_factors ^ new_factors

    def static_provider_set(self, factor: CredentialFactor) -> FrozenSet[str]:
        """Providers of a path-independent factor, with no exclusion.

        Raises ``KeyError`` for ``LINKED_ACCOUNT`` (whose providers are a
        property of the path); callers gate on that factor first.
        """
        return self._static[factor]

    def static_providers_ordered(
        self, factor: CredentialFactor
    ) -> Tuple[str, ...]:
        """Like :meth:`static_provider_set`, in graph insertion order."""
        return self._static_ordered[factor]

    def provider_names(self, factor: CredentialFactor, path) -> FrozenSet[str]:
        """Services providing ``factor`` for ``path``, excluding the path's
        own service (a node never parents itself)."""
        if factor is CredentialFactor.LINKED_ACCOUNT:
            base = path.linked_providers & self.ecosystem.name_set
        else:
            base = self._static[factor]
        if path.service in base:
            return base - {path.service}
        return base

    def providers_ordered(
        self, factor: CredentialFactor, path
    ) -> Tuple[str, ...]:
        """Like :meth:`provider_names` but in graph insertion order, matching
        the enumeration order of the seed's linear scans."""
        if factor is CredentialFactor.LINKED_ACCOUNT:
            accepted = path.linked_providers
            return tuple(
                name
                for name in self.ecosystem.names
                if name in accepted and name != path.service
            )
        ordered = self._static_ordered[factor]
        if path.service in self._static[factor]:
            return tuple(name for name in ordered if name != path.service)
        return ordered
