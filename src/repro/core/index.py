"""Inverted indexes over a TDG node set -- the indexed TDG engine.

The seed implementation of :mod:`repro.core.tdg` answered every
"who can provide factor F?" question by rescanning all nodes, which made
Transformation Dependency Graph construction quadratic-to-cubic in
ecosystem size.  This module precomputes the two inversions the graph
queries over and over:

- :class:`EcosystemIndex` -- **attacker-independent** structure: for each
  personal-information kind, which services expose it in full
  (``holders_of``); for each maskable credential factor, which services
  hold a partial (masked) view and which character positions each view
  reveals (Insight 4's combining inputs); which services can feed a
  customer-service dossier; which services yield mailbox access.
- :class:`AttackerIndex` -- one **per attacker profile**: for each
  credential factor, the exact set (and insertion-ordered tuple) of
  services that provide it under that profile's capabilities.  The
  provider semantics are bit-for-bit those of
  :meth:`~repro.core.tdg.TransformationDependencyGraph.provides`; the
  differential suite in ``tests/test_tdg_equivalence.py`` locks the
  equivalence against the brute-force reference.

One :class:`EcosystemIndex` can back many :class:`AttackerIndex` views,
which is what the batch APIs (``TransformationDependencyGraph.analyze_many``,
``ActFort.batch``) exploit: the measurement study and the defense
evaluation analyze several attacker profiles over shared indexes instead
of rebuilding per profile.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Tuple,
)

from repro.model.attacker import AttackerCapability, AttackerProfile
from repro.model.factors import (
    CredentialFactor,
    PersonalInfoKind,
    info_satisfying_factor,
    is_robust_factor,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.tdg import TDGNode

#: Facts that can convince a customer-service agent (Case III's web path).
DOSSIER_KINDS: FrozenSet[PersonalInfoKind] = frozenset(
    {
        PersonalInfoKind.REAL_NAME,
        PersonalInfoKind.CITIZEN_ID,
        PersonalInfoKind.ADDRESS,
        PersonalInfoKind.CELLPHONE_NUMBER,
        PersonalInfoKind.EMAIL_ADDRESS,
        PersonalInfoKind.BANKCARD_NUMBER,
        PersonalInfoKind.ACQUAINTANCE_NAME,
        PersonalInfoKind.ORDER_HISTORY,
    }
)

#: Number of correct dossier facts a human agent demands.
DOSSIER_THRESHOLD = 3

#: Maskable credential factors: the info kind whose partial (masked) views
#: can be combined across providers to reconstruct the value (Insight 4),
#: plus the canonical value length the union must cover.
MASKABLE_FACTORS: Mapping[CredentialFactor, Tuple[PersonalInfoKind, int]] = {
    CredentialFactor.CITIZEN_ID: (PersonalInfoKind.CITIZEN_ID, 18),
    CredentialFactor.BANKCARD_NUMBER: (PersonalInfoKind.BANKCARD_NUMBER, 16),
}


class EcosystemIndex:
    """Attacker-independent inverted indexes over one node set.

    Node order is preserved everywhere (tuples follow the graph's insertion
    order) so that indexed queries enumerate providers in exactly the order
    the seed's linear scans did.
    """

    def __init__(self, nodes: Mapping[str, "TDGNode"]) -> None:
        self.names: Tuple[str, ...] = tuple(nodes)
        self.name_set: FrozenSet[str] = frozenset(nodes)

        holders: Dict[PersonalInfoKind, List[str]] = {}
        dossier: List[str] = []
        for name, node in nodes.items():
            for kind in node.pia:
                holders.setdefault(kind, []).append(name)
            if len(node.pia & DOSSIER_KINDS) >= DOSSIER_THRESHOLD:
                dossier.append(name)
        #: kind -> insertion-ordered holders exposing it in full.
        self.holders_of: Dict[PersonalInfoKind, Tuple[str, ...]] = {
            kind: tuple(names) for kind, names in holders.items()
        }
        self._holder_sets: Dict[PersonalInfoKind, FrozenSet[str]] = {
            kind: frozenset(names) for kind, names in holders.items()
        }
        #: Services whose PIA clears the customer-service dossier bar.
        self.dossier_holders: FrozenSet[str] = frozenset(dossier)
        self._dossier_ordered: Tuple[str, ...] = tuple(dossier)

        # Partial (masked) views per maskable factor, in insertion order.
        partial: Dict[
            CredentialFactor, List[Tuple[str, FrozenSet[int]]]
        ] = {factor: [] for factor in MASKABLE_FACTORS}
        for name, node in nodes.items():
            for factor, (kind, _length) in MASKABLE_FACTORS.items():
                positions = node.pia_partial.get(kind, frozenset())
                if positions:
                    partial[factor].append((name, positions))
        #: factor -> ((service, revealed positions), ...) for every service
        #: holding a non-empty masked view of the factor's value.
        self.partial_holders: Dict[
            CredentialFactor, Tuple[Tuple[str, FrozenSet[int]], ...]
        ] = {factor: tuple(views) for factor, views in partial.items()}
        self.partial_by_service: Dict[
            CredentialFactor, Dict[str, FrozenSet[int]]
        ] = {
            factor: dict(views) for factor, views in partial.items()
        }
        # Combinability-excluding-one-service in O(1): a position is lost by
        # excluding service ``s`` only if ``s`` is its sole holder.
        self._partial_union: Dict[CredentialFactor, FrozenSet[int]] = {}
        self._unique_coverage: Dict[CredentialFactor, Dict[str, int]] = {}
        for factor, views in partial.items():
            counts: Dict[int, int] = {}
            for _name, positions in views:
                for position in positions:
                    counts[position] = counts.get(position, 0) + 1
            self._partial_union[factor] = frozenset(counts)
            unique: Dict[str, int] = {}
            for name, positions in views:
                only_here = sum(1 for p in positions if counts[p] == 1)
                if only_here:
                    unique[name] = only_here
            self._unique_coverage[factor] = unique

    def holder_set(self, kind: PersonalInfoKind) -> FrozenSet[str]:
        """Services exposing ``kind`` in full."""
        return self._holder_sets.get(kind, frozenset())

    def combinable_excluding(
        self, factor: CredentialFactor, excluded: str
    ) -> bool:
        """Whether masked views pooled from *every* node except ``excluded``
        reconstruct ``factor``'s full value (Insight 4 over the whole graph)."""
        maskable = MASKABLE_FACTORS.get(factor)
        if maskable is None:
            return False
        _kind, length = maskable
        union = self._partial_union[factor]
        lost = self._unique_coverage[factor].get(excluded, 0)
        return len(union) - lost >= length

    def view(self, attacker: AttackerProfile) -> "AttackerIndex":
        """Build the per-profile factor->provider index."""
        return AttackerIndex(self, attacker)


class AttackerIndex:
    """factor -> providers, resolved under one attacker profile.

    ``LINKED_ACCOUNT`` is the one path-dependent factor (the accepted
    identity providers are a property of the path); it is resolved lazily in
    :meth:`provider_names` / :meth:`providers_ordered`.
    """

    def __init__(
        self, ecosystem: EcosystemIndex, attacker: AttackerProfile
    ) -> None:
        self.ecosystem = ecosystem
        self.attacker = attacker
        self.innate = attacker.innately_satisfiable()
        self.can_social_engineer = (
            AttackerCapability.SOCIAL_ENGINEERING in attacker.capabilities
        )
        email_channel = (
            AttackerCapability.EMAIL_CHANNEL_AFTER_COMPROMISE
            in attacker.capabilities
        )
        self._static: Dict[CredentialFactor, FrozenSet[str]] = {}
        self._static_ordered: Dict[CredentialFactor, Tuple[str, ...]] = {}
        for factor in CredentialFactor:
            if factor is CredentialFactor.LINKED_ACCOUNT:
                continue  # path-dependent; resolved per query
            if is_robust_factor(factor) or factor is CredentialFactor.PASSWORD:
                ordered: Tuple[str, ...] = ()
            elif factor in (
                CredentialFactor.EMAIL_CODE,
                CredentialFactor.EMAIL_LINK,
            ):
                ordered = (
                    ecosystem.holders_of.get(
                        PersonalInfoKind.MAILBOX_ACCESS, ()
                    )
                    if email_channel
                    else ()
                )
            elif factor is CredentialFactor.CUSTOMER_SERVICE:
                ordered = (
                    ecosystem._dossier_ordered
                    if self.can_social_engineer
                    else ()
                )
            else:
                kinds = info_satisfying_factor(factor)
                if len(kinds) <= 1:
                    ordered = (
                        ecosystem.holders_of.get(next(iter(kinds)), ())
                        if kinds
                        else ()
                    )
                else:
                    merged = frozenset().union(
                        *(ecosystem.holder_set(kind) for kind in kinds)
                    )
                    ordered = tuple(
                        name for name in ecosystem.names if name in merged
                    )
            self._static_ordered[factor] = ordered
            self._static[factor] = frozenset(ordered)

    def static_provider_set(self, factor: CredentialFactor) -> FrozenSet[str]:
        """Providers of a path-independent factor, with no exclusion.

        Raises ``KeyError`` for ``LINKED_ACCOUNT`` (whose providers are a
        property of the path); callers gate on that factor first.
        """
        return self._static[factor]

    def static_providers_ordered(
        self, factor: CredentialFactor
    ) -> Tuple[str, ...]:
        """Like :meth:`static_provider_set`, in graph insertion order."""
        return self._static_ordered[factor]

    def provider_names(self, factor: CredentialFactor, path) -> FrozenSet[str]:
        """Services providing ``factor`` for ``path``, excluding the path's
        own service (a node never parents itself)."""
        if factor is CredentialFactor.LINKED_ACCOUNT:
            base = path.linked_providers & self.ecosystem.name_set
        else:
            base = self._static[factor]
        if path.service in base:
            return base - {path.service}
        return base

    def providers_ordered(
        self, factor: CredentialFactor, path
    ) -> Tuple[str, ...]:
        """Like :meth:`provider_names` but in graph insertion order, matching
        the enumeration order of the seed's linear scans."""
        if factor is CredentialFactor.LINKED_ACCOUNT:
            accepted = path.linked_providers
            return tuple(
                name
                for name in self.ecosystem.names
                if name in accepted and name != path.service
            )
        ordered = self._static_ordered[factor]
        if path.service in self._static[factor]:
            return tuple(name for name in ordered if name != path.service)
        return ordered
