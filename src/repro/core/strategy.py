"""ActFort stage 4: Strategy Output.

Two queries, exactly as Section III-E frames them:

1. **Forward closure** -- given the accounts an attacker has already
   compromised (the Online Account Attacked Set, ``OAAS``), pool their
   personal information into the Initial Attack Database (``IAD``) and
   iterate: any account one of whose authentication paths is fully
   satisfiable from the IAD falls, its information joins the IAD, repeat.
   The fixpoint is the set of Potential Account Victims (``PAV``).

2. **Backward chain search** -- given a *target* account, search full
   capacity parents and merged half-capacity couples, recursing until
   every leaf is a node whose credential factors are just
   cellphone number + SMS code, and return the account chain.

Both operate on a :class:`~repro.core.tdg.TransformationDependencyGraph`;
the executable output (:class:`AttackChain`) is what
:mod:`repro.attack.executor` replays against the simulated internet.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.tdg import (
    DOSSIER_KINDS,
    DOSSIER_THRESHOLD,
    TDGNode,
    TransformationDependencyGraph,
)
from repro.model.account import AuthPath
from repro.model.attacker import AttackerCapability
from repro.model.factors import (
    CredentialFactor,
    PersonalInfoKind,
    Platform,
    factor_satisfied_by_info,
)


@dataclasses.dataclass(frozen=True)
class ClosureEntry:
    """One account that fell during forward closure."""

    service: str
    round: int
    path: AuthPath
    #: Which already-compromised service supplied each chained factor
    #: (factors the attacker profile covers are absent from the mapping).
    factor_sources: Mapping[CredentialFactor, str]


@dataclasses.dataclass(frozen=True)
class ForwardClosureResult:
    """The PAV with provenance."""

    entries: Tuple[ClosureEntry, ...]
    safe: FrozenSet[str]
    final_info: FrozenSet[PersonalInfoKind]

    @property
    def compromised(self) -> FrozenSet[str]:
        """Names of every potential account victim."""
        return frozenset(e.service for e in self.entries)

    def entry(self, service: str) -> ClosureEntry:
        """The closure entry for one compromised service."""
        for candidate in self.entries:
            if candidate.service == service:
                return candidate
        raise KeyError(f"{service!r} was not compromised")

    def by_round(self) -> Dict[int, Tuple[str, ...]]:
        """Services grouped by the round they fell in."""
        grouped: Dict[int, List[str]] = {}
        for entry in self.entries:
            grouped.setdefault(entry.round, []).append(entry.service)
        return {r: tuple(names) for r, names in sorted(grouped.items())}


@dataclasses.dataclass(frozen=True)
class ChainStep:
    """One takeover in an executable attack chain."""

    service: str
    path: AuthPath
    factor_sources: Mapping[CredentialFactor, str]

    def describe(self) -> str:
        """E.g. ``alipay via reset[mobile]: CID+PN+SC (CID<-ctrip)``."""
        sources = ", ".join(
            f"{factor.value}<-{src}"
            for factor, src in sorted(
                self.factor_sources.items(), key=lambda kv: kv[0].value
            )
        )
        suffix = f" ({sources})" if sources else ""
        return f"{self.service} via {self.path.describe()}{suffix}"


@dataclasses.dataclass(frozen=True)
class AttackChain:
    """An ordered, executable chain ending at the target account."""

    target: str
    steps: Tuple[ChainStep, ...]

    @property
    def depth(self) -> int:
        """Number of intermediate accounts before the target."""
        return len(self.steps) - 1

    @property
    def services(self) -> Tuple[str, ...]:
        """Services in takeover order (target last)."""
        return tuple(step.service for step in self.steps)

    def describe(self) -> str:
        """Multi-line human-readable rendering of the chain."""
        lines = [f"attack chain -> {self.target}:"]
        for index, step in enumerate(self.steps, start=1):
            lines.append(f"  {index}. {step.describe()}")
        return "\n".join(lines)


class StrategyEngine:
    """Strategy Output over one TDG."""

    def __init__(self, tdg: TransformationDependencyGraph) -> None:
        self._tdg = tdg
        self._email_provider: Optional[str] = None

    @property
    def tdg(self) -> TransformationDependencyGraph:
        """The graph the engine searches."""
        return self._tdg

    # ------------------------------------------------------------------
    # Scenario 1: forward closure (OAAS -> PAV)
    # ------------------------------------------------------------------

    def forward_closure(
        self,
        initially_compromised: Iterable[str] = (),
        extra_info: Iterable[PersonalInfoKind] = (),
        email_provider: Optional[str] = None,
    ) -> ForwardClosureResult:
        """Compute the PAV from an initial attacked set.

        ``initially_compromised`` seeds the OAAS (round 0 entries with no
        provenance); ``extra_info`` adds breach data to the IAD directly
        (the paper's "when the data breach happens in the Internet").
        ``email_provider`` pins email-code factors to one specific provider
        service -- pass the victim's actual provider to make the resulting
        chains executable against that victim (at ecosystem level, any
        compromised email service qualifies).

        Results are memoized on the graph keyed by the argument triple and
        kept valid under mutation deltas by
        :meth:`~repro.core.tdg.TransformationDependencyGraph.revalidate_closures`
        (a delta that never reaches the closure's compromised support set
        cannot change it), so repeated PAV queries -- ``ActFort.potential_victims``,
        the insight checks, the defense ablation -- cost one fixpoint run
        per graph state, not one per call.
        """
        self._email_provider = email_provider
        initially_compromised = tuple(initially_compromised)
        extra_info = frozenset(extra_info)
        cache_key = (initially_compromised, extra_info, email_provider)
        cached = self._tdg.closure_cache_get(cache_key)
        if cached is not None:
            return cached
        attacker = self._tdg.attacker
        info: Set[PersonalInfoKind] = set(attacker.known_info) | set(extra_info)
        compromised: Dict[str, ClosureEntry] = {}
        for name in initially_compromised:
            node = self._tdg.node(name)
            compromised[name] = ClosureEntry(
                service=name,
                round=0,
                path=node.takeover_paths[0] if node.takeover_paths else None,
                factor_sources={},
            )
            info |= node.pia

        entries: List[ClosureEntry] = list(compromised.values())
        round_number = 0
        changed = True
        while changed:
            changed = False
            round_number += 1
            fallen_this_round: List[ClosureEntry] = []
            for node in self._tdg.nodes:
                if node.service in compromised:
                    continue
                takeover = self._try_takeover(
                    node, frozenset(info), frozenset(compromised)
                )
                if takeover is None:
                    continue
                path, sources = takeover
                entry = ClosureEntry(
                    service=node.service,
                    round=round_number,
                    path=path,
                    factor_sources=sources,
                )
                fallen_this_round.append(entry)
            for entry in fallen_this_round:
                compromised[entry.service] = entry
                entries.append(entry)
                info |= self._tdg.node(entry.service).pia
                changed = True

        safe = frozenset(
            node.service
            for node in self._tdg.nodes
            if node.service not in compromised
        )
        result = ForwardClosureResult(
            entries=tuple(entries),
            safe=safe,
            final_info=frozenset(info),
        )
        self._tdg.closure_cache_put(cache_key, result)
        return result

    def _try_takeover(
        self,
        node: TDGNode,
        info: FrozenSet[PersonalInfoKind],
        compromised: FrozenSet[str],
    ) -> Optional[Tuple[AuthPath, Dict[CredentialFactor, str]]]:
        """Return (path, provenance) if the node falls to the current IAD."""
        attacker = self._tdg.attacker
        innate = self._tdg.innate_factors()
        best: Optional[Tuple[AuthPath, Dict[CredentialFactor, str]]] = None
        for path in node.takeover_paths:
            sources: Dict[CredentialFactor, str] = {}
            ok = True
            for factor in path.factors:
                if factor in innate:
                    continue
                source = self._factor_source(
                    factor, path, info, compromised
                )
                if source is None:
                    ok = False
                    break
                sources[factor] = source
            if ok and (best is None or len(path.factors) < len(best[0].factors)):
                best = (path, sources)
        return best

    def _factor_source(
        self,
        factor: CredentialFactor,
        path: AuthPath,
        info: FrozenSet[PersonalInfoKind],
        compromised: FrozenSet[str],
    ) -> Optional[str]:
        """Which compromised service supplies ``factor``, if any."""
        attacker = self._tdg.attacker
        if factor is CredentialFactor.LINKED_ACCOUNT:
            for provider in sorted(path.linked_providers):
                if provider in compromised:
                    return provider
            return None
        if factor in (CredentialFactor.EMAIL_CODE, CredentialFactor.EMAIL_LINK):
            if (
                AttackerCapability.EMAIL_CHANNEL_AFTER_COMPROMISE
                not in attacker.capabilities
            ):
                return None
            pinned = getattr(self, "_email_provider", None)
            if pinned is not None:
                return pinned if pinned in compromised else None
            if PersonalInfoKind.MAILBOX_ACCESS not in info:
                return None
            return self._provider_of_kind(
                PersonalInfoKind.MAILBOX_ACCESS, compromised
            )
        if factor is CredentialFactor.CUSTOMER_SERVICE:
            if (
                AttackerCapability.SOCIAL_ENGINEERING
                not in attacker.capabilities
            ):
                return None
            if len(info & DOSSIER_KINDS) < DOSSIER_THRESHOLD:
                return None
            return self._provider_of_kind(
                next(iter(info & DOSSIER_KINDS)), compromised
            ) or "<dossier>"
        if factor_satisfied_by_info(factor, info):
            for kind in sorted(info, key=lambda k: k.value):
                if factor_satisfied_by_info(factor, {kind}):
                    source = self._provider_of_kind(kind, compromised)
                    if source is not None:
                        return source
            return "<attacker-profile>"
        # Insight 4: reconstruct a masked value by combining partial views
        # harvested from several compromised accounts.
        contributors = self._combining_contributors(factor, path, compromised)
        if contributors:
            return "+".join(contributors)
        return None

    def _combining_contributors(
        self,
        factor: CredentialFactor,
        path: AuthPath,
        compromised: FrozenSet[str],
    ) -> Optional[Tuple[str, ...]]:
        """A greedy minimal set of compromised accounts whose masked views
        of ``factor``'s value union to the full string, or ``None``."""
        from repro.core.index import MASKABLE_FACTORS

        maskable = MASKABLE_FACTORS.get(factor)
        if maskable is None:
            return None
        _kind, length = maskable
        # Only services actually holding a masked view can contribute; the
        # ecosystem index narrows the candidate set before the greedy cover.
        views = self._tdg.ecosystem_index().partial_by_service[factor]
        holders = sorted(
            (
                (name, positions)
                for name, positions in views.items()
                if name in compromised and name != path.service
            ),
            key=lambda item: (-len(item[1]), item[0]),
        )
        covered: Set[int] = set()
        chosen: List[str] = []
        for name, positions in holders:
            if not positions - covered:
                continue
            covered |= positions
            chosen.append(name)
            if len(covered) >= length:
                return tuple(sorted(chosen))
        return None

    def _provider_of_kind(
        self, kind: PersonalInfoKind, compromised: FrozenSet[str]
    ) -> Optional[str]:
        # Indexed: the alphabetically-first compromised holder, without
        # scanning every compromised account's PIA.
        holders = self._tdg.ecosystem_index().holder_set(kind) & compromised
        return min(holders) if holders else None

    # ------------------------------------------------------------------
    # Scenario 2: backward chain search (target -> chain)
    # ------------------------------------------------------------------

    def attack_chain(
        self,
        target: str,
        platform: Optional[Platform] = None,
        email_provider: Optional[str] = None,
    ) -> Optional[AttackChain]:
        """Return an executable chain ending at ``target``, or ``None``.

        The chain is reconstructed from the forward closure (so it is
        guaranteed executable) and is minimal in the closure-round sense:
        every step's chained factors come from services that fell strictly
        earlier.  ``platform`` restricts the *target's* final path only --
        middle accounts use whichever client is easiest, as real attackers
        do.  ``email_provider`` pins email codes to the victim's actual
        provider so the chain is executable against a concrete victim.
        """
        closure = self.forward_closure(email_provider=email_provider)
        by_name = {entry.service: entry for entry in closure.entries}
        if target not in by_name:
            return None
        target_entry = by_name[target]
        if platform is not None and target_entry.path.platform is not platform:
            replacement = self._retarget_platform(
                target, platform, closure, by_name
            )
            if replacement is None:
                return None
            target_entry = replacement

        ordered: List[ChainStep] = []
        visited: Set[str] = set()

        def visit(entry: ClosureEntry) -> None:
            if entry.service in visited:
                return
            visited.add(entry.service)
            for source in sorted(set(entry.factor_sources.values())):
                if source in by_name:
                    visit(by_name[source])
            ordered.append(
                ChainStep(
                    service=entry.service,
                    path=entry.path,
                    factor_sources=dict(entry.factor_sources),
                )
            )

        visit(target_entry)
        return AttackChain(target=target, steps=tuple(ordered))

    def _retarget_platform(
        self,
        target: str,
        platform: Platform,
        closure: ForwardClosureResult,
        by_name: Mapping[str, ClosureEntry],
    ) -> Optional[ClosureEntry]:
        """Re-derive the target's entry restricted to one platform."""
        node = self._tdg.node(target)
        platform_node = TDGNode(
            service=node.service,
            domain=node.domain,
            takeover_paths=node.paths_on(platform),
            pia=node.pia,
            pia_partial=node.pia_partial,
        )
        others = closure.compromised - {target}
        takeover = self._try_takeover(
            platform_node,
            closure.final_info
            - self._tdg.node(target).pia,  # cannot use the target's own info
            frozenset(others),
        )
        if takeover is None:
            return None
        path, sources = takeover
        return ClosureEntry(
            service=target,
            round=by_name[target].round,
            path=path,
            factor_sources=sources,
        )

    def reachable_targets(self) -> FrozenSet[str]:
        """Every service some chain reaches under the attacker profile."""
        return self.forward_closure().compromised
