"""ActFort stage 4: Strategy Output.

Two queries, exactly as Section III-E frames them:

1. **Forward closure** -- given the accounts an attacker has already
   compromised (the Online Account Attacked Set, ``OAAS``), pool their
   personal information into the Initial Attack Database (``IAD``) and
   iterate: any account one of whose authentication paths is fully
   satisfiable from the IAD falls, its information joins the IAD, repeat.
   The fixpoint is the set of Potential Account Victims (``PAV``).

2. **Backward chain search** -- given a *target* account, search full
   capacity parents and merged half-capacity couples, recursing until
   every leaf is a node whose credential factors are just
   cellphone number + SMS code, and return the account chain.

Both operate on a :class:`~repro.core.tdg.TransformationDependencyGraph`;
the executable output (:class:`AttackChain`) is what
:mod:`repro.attack.executor` replays against the simulated internet.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.tdg import (
    DOSSIER_KINDS,
    DOSSIER_THRESHOLD,
    TDGNode,
    TransformationDependencyGraph,
)
from repro.model.account import AuthPath
from repro.model.attacker import AttackerCapability
from repro.model.factors import (
    CredentialFactor,
    PersonalInfoKind,
    Platform,
    factor_satisfied_by_info,
)


@dataclasses.dataclass(frozen=True)
class ClosureEntry:
    """One account that fell during forward closure."""

    service: str
    round: int
    #: ``None`` for round-0 seeds of services with no takeover path (the
    #: account was handed to the attacker, not taken over).
    path: Optional[AuthPath]
    #: Which already-compromised service supplied each chained factor
    #: (factors the attacker profile covers are absent from the mapping).
    #: Insight-4 combining factors name every contributor joined with
    #: ``"+"``; use :meth:`source_services` for the decoded set.
    factor_sources: Mapping[CredentialFactor, str]

    def source_services(self) -> Tuple[str, ...]:
        """Every compromised service this entry's provenance consumed.

        Combining sources (``"a+b"``) are split into their contributors;
        synthetic markers (``"<dossier>"``, ``"<attacker-profile>"``) are
        dropped.  Sorted and de-duplicated.
        """
        names: Set[str] = set()
        for source in self.factor_sources.values():
            for part in source.split("+"):
                if part and not part.startswith("<"):
                    names.add(part)
        return tuple(sorted(names))


@dataclasses.dataclass(frozen=True)
class ForwardClosureResult:
    """The PAV with provenance."""

    entries: Tuple[ClosureEntry, ...]
    safe: FrozenSet[str]
    final_info: FrozenSet[PersonalInfoKind]

    @property
    def compromised(self) -> FrozenSet[str]:
        """Names of every potential account victim."""
        return frozenset(e.service for e in self.entries)

    def entry(self, service: str) -> ClosureEntry:
        """The closure entry for one compromised service."""
        for candidate in self.entries:
            if candidate.service == service:
                return candidate
        raise KeyError(f"{service!r} was not compromised")

    def by_round(self) -> Dict[int, Tuple[str, ...]]:
        """Services grouped by the round they fell in."""
        grouped: Dict[int, List[str]] = {}
        for entry in self.entries:
            grouped.setdefault(entry.round, []).append(entry.service)
        return {r: tuple(names) for r, names in sorted(grouped.items())}

    def support_index(self) -> Dict[str, FrozenSet[str]]:
        """Reverse support postings: service -> entries it propped up.

        For every compromised service, the set of closure entries whose
        winning path consumed it (directly, as a factor source or as an
        Insight-4 combining contributor).  This is the provenance half of
        the closure's support set; the per-round IAD snapshots kept by
        :class:`ClosureSupportRecord` are the information half.
        """
        dependents: Dict[str, Set[str]] = {}
        for entry in self.entries:
            for source in entry.source_services():
                dependents.setdefault(source, set()).add(entry.service)
        return {name: frozenset(deps) for name, deps in dependents.items()}


@dataclasses.dataclass
class ClosureSupportRecord:
    """One cached closure plus the support postings its re-derivation needs.

    Recorded while the fixpoint runs (scratch or resumed):

    - ``round_entries[r]`` -- the entries that fell in round ``r`` (index 0
      holds the seeds), i.e. the forward posting round -> dependents.
    - ``pre_states[r - 1]`` -- the ``(IAD info, compromised names)``
      snapshot going *into* round ``r``, for every scanned round including
      the final empty one.  These are the aggregate support postings the
      incremental pass diffs: a surviving round is exactly one whose
      pre-state still matches bit-for-bit.
    - ``dirty`` -- node snapshots taken when a delta first reached the
      record's support set (name -> node at record time, ``None`` if the
      service did not exist then).  Empty means the record is clean and
      ``result`` is served as-is; non-empty means the next query resumes
      the fixpoint through :meth:`StrategyEngine.forward_closure`,
      retracting only the rounds whose support moved.
    """

    result: ForwardClosureResult
    round_entries: Tuple[Tuple[ClosureEntry, ...], ...]
    pre_states: Tuple[
        Tuple[FrozenSet[PersonalInfoKind], FrozenSet[str]], ...
    ]
    dirty: Dict[str, Optional[TDGNode]] = dataclasses.field(
        default_factory=dict
    )

    def pre_state(
        self, round_number: int
    ) -> Optional[Tuple[FrozenSet[PersonalInfoKind], FrozenSet[str]]]:
        """The recorded ``(info, compromised)`` snapshot entering a round,
        or ``None`` beyond the recorded horizon."""
        index = round_number - 1
        if 0 <= index < len(self.pre_states):
            return self.pre_states[index]
        return None

    def reused_entries(self, round_number: int) -> Tuple[ClosureEntry, ...]:
        """The recorded entries of one round (empty past the horizon)."""
        if round_number < len(self.round_entries):
            return self.round_entries[round_number]
        return ()


@dataclasses.dataclass(frozen=True)
class ChainStep:
    """One takeover in an executable attack chain."""

    service: str
    #: ``None`` only for a seeded target: the account was already in the
    #: attacker's hands, no takeover path is replayed.
    path: Optional[AuthPath]
    factor_sources: Mapping[CredentialFactor, str]

    def describe(self) -> str:
        """E.g. ``alipay via reset[mobile]: CID+PN+SC (CID<-ctrip)``."""
        sources = ", ".join(
            f"{factor.value}<-{src}"
            for factor, src in sorted(
                self.factor_sources.items(), key=lambda kv: kv[0].value
            )
        )
        suffix = f" ({sources})" if sources else ""
        via = (
            self.path.describe()
            if self.path is not None
            else "(already compromised)"
        )
        return f"{self.service} via {via}{suffix}"


@dataclasses.dataclass(frozen=True)
class AttackChain:
    """An ordered, executable chain ending at the target account."""

    target: str
    steps: Tuple[ChainStep, ...]

    @property
    def depth(self) -> int:
        """Number of intermediate accounts before the target."""
        return len(self.steps) - 1

    @property
    def services(self) -> Tuple[str, ...]:
        """Services in takeover order (target last)."""
        return tuple(step.service for step in self.steps)

    def describe(self) -> str:
        """Multi-line human-readable rendering of the chain."""
        lines = [f"attack chain -> {self.target}:"]
        for index, step in enumerate(self.steps, start=1):
            lines.append(f"  {index}. {step.describe()}")
        return "\n".join(lines)


class StrategyEngine:
    """Strategy Output over one TDG."""

    def __init__(self, tdg: TransformationDependencyGraph) -> None:
        self._tdg = tdg
        self._email_provider: Optional[str] = None

    @property
    def tdg(self) -> TransformationDependencyGraph:
        """The graph the engine searches."""
        return self._tdg

    # ------------------------------------------------------------------
    # Scenario 1: forward closure (OAAS -> PAV)
    # ------------------------------------------------------------------

    def forward_closure(
        self,
        initially_compromised: Iterable[str] = (),
        extra_info: Iterable[PersonalInfoKind] = (),
        email_provider: Optional[str] = None,
    ) -> ForwardClosureResult:
        """Compute the PAV from an initial attacked set.

        ``initially_compromised`` seeds the OAAS (round 0 entries with no
        provenance); ``extra_info`` adds breach data to the IAD directly
        (the paper's "when the data breach happens in the Internet").
        ``email_provider`` pins email-code factors to one specific provider
        service -- pass the victim's actual provider to make the resulting
        chains executable against that victim (at ecosystem level, any
        compromised email service qualifies).

        Results are memoized on the graph keyed by the argument triple and
        kept valid under mutation deltas by
        :meth:`~repro.core.tdg.TransformationDependencyGraph.revalidate_closures`:
        a delta that never reaches the closure's compromised support set
        cannot change it and the cached record survives verbatim, while a
        support-reaching delta only marks the record dirty with node
        snapshots.  The next query then *resumes* the fixpoint here instead
        of recomputing it: every round whose recorded pre-state (IAD info +
        compromised set) still matches is reused verbatim with only the
        touched services re-tested, and the scan falls back to the full
        per-round derivation exactly from the first round whose support
        moved.  Repeated PAV queries -- ``ActFort.potential_victims``, the
        insight checks, the defense ablation -- therefore cost one fixpoint
        run per graph state, and post-mutation re-serves cost only the
        retracted cone.
        """
        self._email_provider = email_provider
        initially_compromised = tuple(initially_compromised)
        extra_info = frozenset(extra_info)
        cache_key = (initially_compromised, extra_info, email_provider)
        record = self._tdg.closure_cache_get(cache_key)
        if record is not None and not record.dirty:
            return record.result
        obs = self._tdg.instrumentation()
        with obs.span(
            "closure.run",
            attacker=self._tdg.instrumentation_label(),
            seeds=len(initially_compromised),
            resumed=record is not None,
        ) as span:
            fresh = self._run_closure(
                initially_compromised, extra_info, record, span
            )
        self._tdg.closure_cache_put(
            cache_key, fresh, resumed=record is not None
        )
        return fresh.result

    def _run_closure(
        self,
        initially_compromised: Tuple[str, ...],
        extra_info: FrozenSet[PersonalInfoKind],
        base: Optional[ClosureSupportRecord],
        span=None,
    ) -> ClosureSupportRecord:
        """Run the PAV fixpoint, resuming from ``base`` when possible.

        With ``base=None`` this is the scratch derivation.  With a dirty
        ``base`` it is the two-phase incremental pass: phase A retracts
        exactly the rounds whose support moved -- a round survives when its
        recorded pre-state (IAD info + compromised set) matches the current
        run bit-for-bit and no compromised service's PIA postings changed --
        and phase B re-derives from that retracted frontier, re-testing
        only the touched services inside surviving rounds.  Both phases
        walk rounds in ascending order, so the retraction descends the
        dependency rounds transitively: once one round's support moves,
        every later round re-derives (their pre-states can no longer
        match).  The output is bit-for-bit what the scratch run over the
        current graph produces (entries order included), which the
        differential suites lock.
        """
        graph_nodes = self._tdg._nodes
        dirty = base.dirty if base is not None else {}
        # Names whose *information postings* (complete or masked PIA)
        # differ from the record's baseline.  A surviving round may reuse
        # another service's entry only while no such name is compromised:
        # provenance (`_provider_of_kind`, combining pools) reads the
        # PIA postings of compromised accounts, so a changed posting can
        # move provenance even when the round's info/compromised state is
        # unchanged.
        provenance_dirty: Set[str] = set()
        for name, snapshot in dirty.items():
            current = graph_nodes.get(name)
            if (
                snapshot is None
                or current is None
                or snapshot.pia != current.pia
                or snapshot.pia_partial != current.pia_partial
            ):
                provenance_dirty.add(name)

        attacker = self._tdg.attacker
        info: Set[PersonalInfoKind] = set(attacker.known_info) | set(extra_info)
        compromised: Dict[str, ClosureEntry] = {}
        for name in initially_compromised:
            node = self._tdg.node(name)
            compromised[name] = ClosureEntry(
                service=name,
                round=0,
                path=node.takeover_paths[0] if node.takeover_paths else None,
                factor_sources={},
            )
            info |= node.pia

        entries: List[ClosureEntry] = list(compromised.values())
        round_entries: List[Tuple[ClosureEntry, ...]] = [tuple(entries)]
        pre_states: List[
            Tuple[FrozenSet[PersonalInfoKind], FrozenSet[str]]
        ] = []
        ordinals: Optional[Dict[str, int]] = None
        round_number = 0
        rounds_reused = 0
        rounds_scanned = 0
        while True:
            round_number += 1
            pre_info = frozenset(info)
            pre_compromised = frozenset(compromised)
            pre_states.append((pre_info, pre_compromised))
            old_state = (
                base.pre_state(round_number) if base is not None else None
            )
            fallen: List[ClosureEntry] = []
            if (
                old_state is not None
                and old_state[0] == pre_info
                and old_state[1] == pre_compromised
                and not (provenance_dirty & pre_compromised)
            ):
                # Surviving round: same support, so every untouched
                # service's decision (and provenance) is unchanged.  Reuse
                # its entries verbatim; re-test only the touched services.
                rounds_reused += 1
                fallen = [
                    entry
                    for entry in base.reused_entries(round_number)
                    if entry.service not in dirty
                ]
                retested: List[ClosureEntry] = []
                for name in dirty:
                    node = graph_nodes.get(name)
                    if node is None or name in compromised:
                        continue
                    takeover = self._try_takeover(
                        node, pre_info, pre_compromised
                    )
                    if takeover is not None:
                        retested.append(
                            ClosureEntry(
                                service=name,
                                round=round_number,
                                path=takeover[0],
                                factor_sources=takeover[1],
                            )
                        )
                if retested:
                    if ordinals is None:
                        ordinals = {
                            name: index
                            for index, name in enumerate(graph_nodes)
                        }
                    fallen.extend(retested)
                    fallen.sort(key=lambda entry: ordinals[entry.service])
            else:
                # Retracted frontier: the round's support moved (or the
                # record never reached this far) -- full per-round scan.
                rounds_scanned += 1
                for node in self._tdg.nodes:
                    if node.service in compromised:
                        continue
                    takeover = self._try_takeover(
                        node, pre_info, pre_compromised
                    )
                    if takeover is None:
                        continue
                    fallen.append(
                        ClosureEntry(
                            service=node.service,
                            round=round_number,
                            path=takeover[0],
                            factor_sources=takeover[1],
                        )
                    )
            if not fallen:
                break
            round_entries.append(tuple(fallen))
            for entry in fallen:
                compromised[entry.service] = entry
                entries.append(entry)
                info |= graph_nodes[entry.service].pia

        obs = self._tdg.instrumentation()
        label = self._tdg.instrumentation_label()
        obs.counter(
            "repro_closure_rounds_reused_total",
            "Fixpoint rounds reused verbatim by a resumed closure run.",
            labels=("attacker",),
        ).labels(attacker=label).inc(rounds_reused)
        obs.counter(
            "repro_closure_rounds_scanned_total",
            "Fixpoint rounds derived by a full per-round service scan.",
            labels=("attacker",),
        ).labels(attacker=label).inc(rounds_scanned)
        if span is not None:
            span.set_attribute("rounds", round_number)
            span.set_attribute("rounds_reused", rounds_reused)
            span.set_attribute("rounds_scanned", rounds_scanned)
            span.set_attribute("compromised", len(compromised))

        safe = frozenset(graph_nodes) - compromised.keys()
        result = ForwardClosureResult(
            entries=tuple(entries),
            safe=safe,
            final_info=frozenset(info),
        )
        if base is not None and result == base.result:
            # The delta reached the support set but cancelled out (or only
            # re-derived identical entries): keep the old result object so
            # downstream identity-based caching stays warm.
            result = base.result
        return ClosureSupportRecord(
            result=result,
            round_entries=tuple(round_entries),
            pre_states=tuple(pre_states),
        )

    def _try_takeover(
        self,
        node: TDGNode,
        info: FrozenSet[PersonalInfoKind],
        compromised: FrozenSet[str],
    ) -> Optional[Tuple[AuthPath, Dict[CredentialFactor, str]]]:
        """Return (path, provenance) if the node falls to the current IAD."""
        innate = self._tdg.innate_factors()
        best: Optional[Tuple[AuthPath, Dict[CredentialFactor, str]]] = None
        for path in node.takeover_paths:
            sources: Dict[CredentialFactor, str] = {}
            ok = True
            for factor in path.factors:
                if factor in innate:
                    continue
                source = self._factor_source(
                    factor, path, info, compromised
                )
                if source is None:
                    ok = False
                    break
                sources[factor] = source
            if ok and (best is None or len(path.factors) < len(best[0].factors)):
                best = (path, sources)
        return best

    def _factor_source(
        self,
        factor: CredentialFactor,
        path: AuthPath,
        info: FrozenSet[PersonalInfoKind],
        compromised: FrozenSet[str],
    ) -> Optional[str]:
        """Which compromised service supplies ``factor``, if any."""
        attacker = self._tdg.attacker
        if factor is CredentialFactor.LINKED_ACCOUNT:
            for provider in sorted(path.linked_providers):
                if provider in compromised:
                    return provider
            return None
        if factor in (CredentialFactor.EMAIL_CODE, CredentialFactor.EMAIL_LINK):
            if (
                AttackerCapability.EMAIL_CHANNEL_AFTER_COMPROMISE
                not in attacker.capabilities
            ):
                return None
            pinned = getattr(self, "_email_provider", None)
            if pinned is not None:
                return pinned if pinned in compromised else None
            if PersonalInfoKind.MAILBOX_ACCESS not in info:
                return None
            return self._provider_of_kind(
                PersonalInfoKind.MAILBOX_ACCESS, compromised
            )
        if factor is CredentialFactor.CUSTOMER_SERVICE:
            if (
                AttackerCapability.SOCIAL_ENGINEERING
                not in attacker.capabilities
            ):
                return None
            if len(info & DOSSIER_KINDS) < DOSSIER_THRESHOLD:
                return None
            # Canonical dossier kind: ``info`` is a set, so ``next(iter(...))``
            # would make the provenance depend on hash-iteration order and
            # break bit-for-bit closure comparisons across runs.
            canonical = min(info & DOSSIER_KINDS, key=lambda kind: kind.value)
            return self._provider_of_kind(canonical, compromised) or "<dossier>"
        if factor_satisfied_by_info(factor, info):
            for kind in sorted(info, key=lambda k: k.value):
                if factor_satisfied_by_info(factor, {kind}):
                    source = self._provider_of_kind(kind, compromised)
                    if source is not None:
                        return source
            return "<attacker-profile>"
        # Insight 4: reconstruct a masked value by combining partial views
        # harvested from several compromised accounts.
        contributors = self._combining_contributors(factor, path, compromised)
        if contributors:
            return "+".join(contributors)
        return None

    def _combining_contributors(
        self,
        factor: CredentialFactor,
        path: AuthPath,
        compromised: FrozenSet[str],
    ) -> Optional[Tuple[str, ...]]:
        """A greedy minimal set of compromised accounts whose masked views
        of ``factor``'s value union to the full string, or ``None``."""
        from repro.core.index import MASKABLE_FACTORS

        maskable = MASKABLE_FACTORS.get(factor)
        if maskable is None:
            return None
        _kind, length = maskable
        # Only services actually holding a masked view can contribute; the
        # ecosystem index narrows the candidate set before the greedy cover.
        views = self._tdg.ecosystem_index().partial_by_service[factor]
        holders = sorted(
            (
                (name, positions)
                for name, positions in views.items()
                if name in compromised and name != path.service
            ),
            key=lambda item: (-len(item[1]), item[0]),
        )
        covered: Set[int] = set()
        chosen: List[str] = []
        for name, positions in holders:
            if not positions - covered:
                continue
            covered |= positions
            chosen.append(name)
            if len(covered) >= length:
                return tuple(sorted(chosen))
        return None

    def _provider_of_kind(
        self, kind: PersonalInfoKind, compromised: FrozenSet[str]
    ) -> Optional[str]:
        # Indexed: the alphabetically-first compromised holder, without
        # scanning every compromised account's PIA.
        holders = self._tdg.ecosystem_index().holder_set(kind) & compromised
        return min(holders) if holders else None

    # ------------------------------------------------------------------
    # Scenario 2: backward chain search (target -> chain)
    # ------------------------------------------------------------------

    def attack_chain(
        self,
        target: str,
        platform: Optional[Platform] = None,
        email_provider: Optional[str] = None,
        initially_compromised: Iterable[str] = (),
        extra_info: Iterable[PersonalInfoKind] = (),
    ) -> Optional[AttackChain]:
        """Return an executable chain ending at ``target``, or ``None``.

        The chain is reconstructed from the forward closure (so it is
        guaranteed executable) and is minimal in the closure-round sense:
        every step's chained factors come from services that fell strictly
        earlier.  ``platform`` restricts the *target's* final path only --
        middle accounts use whichever client is easiest, as real attackers
        do.  ``email_provider`` pins email codes to the victim's actual
        provider so the chain is executable against a concrete victim.
        ``initially_compromised`` / ``extra_info`` seed the underlying
        closure (scenario 1's OAAS / breach data); a seeded target's own
        step carries ``path=None`` -- nothing to replay, the account was
        already in the attacker's hands.
        """
        extra_info = frozenset(extra_info)
        closure = self.forward_closure(
            initially_compromised=initially_compromised,
            extra_info=extra_info,
            email_provider=email_provider,
        )
        by_name = {entry.service: entry for entry in closure.entries}
        if target not in by_name:
            return None
        target_entry = by_name[target]
        if platform is not None and (
            target_entry.path is None
            or target_entry.path.platform is not platform
        ):
            # Seeded entries (path None) have no recorded takeover path to
            # restrict; both cases re-derive one on the requested platform.
            replacement = self._retarget_platform(
                target, platform, closure, by_name, extra_info
            )
            if replacement is None:
                return None
            target_entry = replacement

        ordered: List[ChainStep] = []
        visited: Set[str] = set()

        def visit(entry: ClosureEntry) -> None:
            if entry.service in visited:
                return
            visited.add(entry.service)
            # Combining sources name several contributors ("a+b"); every
            # contributor's takeover is a prerequisite step, so each is
            # visited -- an entry joined string would match nothing and
            # silently drop the prerequisite takeovers from the chain.
            for source in entry.source_services():
                if source in by_name:
                    visit(by_name[source])
            ordered.append(
                ChainStep(
                    service=entry.service,
                    path=entry.path,
                    factor_sources=dict(entry.factor_sources),
                )
            )

        visit(target_entry)
        return AttackChain(target=target, steps=tuple(ordered))

    def _retarget_platform(
        self,
        target: str,
        platform: Platform,
        closure: ForwardClosureResult,
        by_name: Mapping[str, ClosureEntry],
        extra_info: FrozenSet[PersonalInfoKind] = frozenset(),
    ) -> Optional[ClosureEntry]:
        """Re-derive the target's entry restricted to one platform."""
        node = self._tdg.node(target)
        platform_node = TDGNode(
            service=node.service,
            domain=node.domain,
            takeover_paths=node.paths_on(platform),
            pia=node.pia,
            pia_partial=node.pia_partial,
        )
        # Cannot use the target's own info -- but only strip the kinds the
        # target *exclusively* contributed.  Subtracting ``target.pia``
        # wholesale would also discard kinds other compromised accounts
        # legitimately hold, so rebuild the IAD from the attacker profile,
        # the closure's breach data, and every other compromised account's
        # postings instead.
        others = closure.compromised - {target}
        available: Set[PersonalInfoKind] = (
            set(self._tdg.attacker.known_info) | extra_info
        )
        for name in others:
            available |= self._tdg.node(name).pia
        takeover = self._try_takeover(
            platform_node,
            frozenset(available),
            frozenset(others),
        )
        if takeover is None:
            return None
        path, sources = takeover
        return ClosureEntry(
            service=target,
            round=by_name[target].round,
            path=path,
            factor_sources=sources,
        )

    def reachable_targets(self) -> FrozenSet[str]:
        """Every service some chain reaches under the attacker profile."""
        return self.forward_closure().compromised
