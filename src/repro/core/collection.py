"""ActFort stage 2: Personal Information Collection.

"Personal information in different online accounts will be collected and
classified to different categories ... identity information, account
information, social relationship, property information, and historical
records" (Section III-C).  The stage consumes either static profiles or
probe observations (which additionally carry observed masking) and
produces per-service :class:`CollectionReport` objects plus the
ecosystem-level Table I aggregation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from repro.model.account import ServiceProfile
from repro.model.factors import InfoCategory, PersonalInfoKind, Platform
from repro.websim.crawler import ProbeObservation

#: Kinds that routinely appear masked; completeness matters for them.
MASKABLE_KINDS: FrozenSet[PersonalInfoKind] = frozenset(
    {PersonalInfoKind.CITIZEN_ID, PersonalInfoKind.BANKCARD_NUMBER}
)


@dataclasses.dataclass(frozen=True)
class ExposedItem:
    """One information kind one service exposes on one platform."""

    kind: PersonalInfoKind
    platform: Platform
    #: Revealed character positions if the item was observed masked;
    #: ``None`` means exposed in full.
    revealed_positions: Optional[FrozenSet[int]] = None

    @property
    def is_complete(self) -> bool:
        """Whether the full value can be read straight off the page."""
        return self.revealed_positions is None

    @property
    def category(self) -> InfoCategory:
        """The paper's five-way category of this kind."""
        return self.kind.category


@dataclasses.dataclass(frozen=True)
class CollectionReport:
    """Stage-2 output for one service."""

    service: str
    domain: str
    items: Tuple[ExposedItem, ...]

    def kinds_on(
        self, platform: Platform, complete_only: bool = False
    ) -> FrozenSet[PersonalInfoKind]:
        """Kinds exposed on ``platform``."""
        return frozenset(
            item.kind
            for item in self.items
            if item.platform is platform
            and (item.is_complete or not complete_only)
        )

    def effective_kinds(self, complete_only: bool = True) -> FrozenSet[PersonalInfoKind]:
        """Union of kinds across platforms.

        With ``complete_only`` (the default) only fully-readable values
        count -- the conservative input the TDG uses; masked fragments are
        handled separately by the combining analysis.
        """
        return frozenset(
            item.kind
            for item in self.items
            if item.is_complete or not complete_only
        )

    def masked_items(self) -> Tuple[ExposedItem, ...]:
        """Items observed with at least one character hidden."""
        return tuple(item for item in self.items if not item.is_complete)

    def category_histogram(self) -> Dict[InfoCategory, int]:
        """How many exposed kinds fall in each of the five categories."""
        counts: Dict[InfoCategory, int] = {c: 0 for c in InfoCategory}
        for kind in self.effective_kinds(complete_only=False):
            counts[kind.category] += 1
        return counts


class PersonalInfoCollection:
    """Builds :class:`CollectionReport` objects."""

    def collect_from_profile(self, profile: ServiceProfile) -> CollectionReport:
        """Collect from a static profile (masking from the mask specs)."""
        items = []
        for platform in sorted(profile.platforms, key=lambda p: p.value):
            for kind in sorted(profile.info_on(platform), key=lambda k: k.value):
                revealed: Optional[FrozenSet[int]] = None
                if (platform, kind) in profile.mask_specs:
                    spec = profile.mask_specs[(platform, kind)]
                    length = _canonical_length(kind)
                    positions = spec.revealed_positions(length)
                    if len(positions) < length:
                        revealed = positions
                items.append(
                    ExposedItem(
                        kind=kind, platform=platform, revealed_positions=revealed
                    )
                )
        return CollectionReport(
            service=profile.name, domain=profile.domain, items=tuple(items)
        )

    def collect_from_observation(
        self, observation: ProbeObservation
    ) -> CollectionReport:
        """Collect from a probe observation (masking as actually rendered)."""
        items = []
        for platform in sorted(observation.exposed, key=lambda p: p.value):
            for kind in sorted(observation.exposed[platform], key=lambda k: k.value):
                positions = observation.observed_masks.get((platform, kind))
                revealed: Optional[FrozenSet[int]] = None
                if positions is not None:
                    length = _canonical_length(kind)
                    if len(positions) < length:
                        revealed = positions
                items.append(
                    ExposedItem(
                        kind=kind, platform=platform, revealed_positions=revealed
                    )
                )
        return CollectionReport(
            service=observation.service,
            domain=observation.domain,
            items=tuple(items),
        )


def _canonical_length(kind: PersonalInfoKind) -> int:
    """Canonical value length for maskable kinds (18-digit citizen IDs,
    16-digit cards); other kinds use a nominal length."""
    if kind is PersonalInfoKind.CITIZEN_ID:
        return 18
    if kind is PersonalInfoKind.BANKCARD_NUMBER:
        return 16
    return 12


def exposure_table(
    reports: Mapping[str, CollectionReport], platform: Platform
) -> Dict[PersonalInfoKind, float]:
    """Table I for one platform: fraction of services exposing each kind.

    A kind counts as exposed whether or not it is masked -- the paper's
    Table I counts "private information obtained from online accounts",
    with masking discussed separately.
    """
    on_platform = [
        r
        for r in reports.values()
        if any(item.platform is platform for item in r.items)
    ]
    if not on_platform:
        raise ValueError(f"no services observed on {platform}")
    table: Dict[PersonalInfoKind, float] = {}
    for kind in PersonalInfoKind:
        count = sum(
            1 for r in on_platform if kind in r.kinds_on(platform)
        )
        table[kind] = count / len(on_platform)
    return table
