"""The typed mutation model: what can change in a live ecosystem.

Every mutation is a small frozen dataclass implementing
:meth:`Mutation.apply_to`, which maps an :class:`~repro.model.ecosystem.Ecosystem`
to ``(new_ecosystem, EcosystemDelta)``.  The ecosystem itself stays
immutable -- ``apply_to`` builds a structurally-shared copy -- and the
:class:`EcosystemDelta` records *exactly* which service profiles were
added, removed, or replaced.  That record is the entire contract between
the mutation layer and the incremental index maintainer
(:mod:`repro.dynamic.incremental`): anything absent from the delta is
guaranteed untouched, so indexes and memoized analysis reachable only
from untouched services survive the mutation.

The six mutation kinds cover the churn the paper's ecosystem actually
exhibits: services launching and shutting down (:class:`AddService`,
:class:`RemoveService`), providers adding or retiring reset combinations
(:class:`AddAuthPath`, :class:`RemoveAuthPath`), masking-rule changes --
the raw material of Insight 4's combining attack --
(:class:`ChangeMasking`), and countermeasures deploying gradually across
providers (:class:`ApplyHardening`, which wraps any defense transform's
``apply_to_profile``).
"""

from __future__ import annotations

import abc
import dataclasses
from typing import FrozenSet, Optional, Tuple

from repro.model.account import AuthPath, MaskSpec, ServiceProfile
from repro.model.ecosystem import Ecosystem
from repro.model.factors import PersonalInfoKind, Platform


@dataclasses.dataclass(frozen=True)
class EcosystemDelta:
    """The exact service-level difference one mutation produced.

    ``replaced`` pairs are ``(old_profile, new_profile)``; a profile whose
    transform was a no-op never appears (``is_noop`` deltas leave every
    index and cache untouched).
    """

    mutation: "Mutation"
    added: Tuple[ServiceProfile, ...] = ()
    removed: Tuple[ServiceProfile, ...] = ()
    replaced: Tuple[Tuple[ServiceProfile, ServiceProfile], ...] = ()

    @property
    def is_noop(self) -> bool:
        """Whether the mutation changed nothing."""
        return not (self.added or self.removed or self.replaced)

    @property
    def added_names(self) -> FrozenSet[str]:
        return frozenset(p.name for p in self.added)

    @property
    def removed_names(self) -> FrozenSet[str]:
        return frozenset(p.name for p in self.removed)

    @property
    def replaced_names(self) -> FrozenSet[str]:
        return frozenset(new.name for _old, new in self.replaced)

    @property
    def touched_services(self) -> Tuple[str, ...]:
        """Every service name the delta mentions, adds first."""
        return (
            tuple(p.name for p in self.added)
            + tuple(p.name for p in self.removed)
            + tuple(new.name for _old, new in self.replaced)
        )

    def describe(self) -> str:
        """Short human-readable rendering for logs and trajectories."""
        parts = []
        if self.added:
            parts.append("+" + ",".join(sorted(self.added_names)))
        if self.removed:
            parts.append("-" + ",".join(sorted(self.removed_names)))
        if self.replaced:
            parts.append("~" + ",".join(sorted(self.replaced_names)))
        return " ".join(parts) if parts else "(no-op)"


class Mutation(abc.ABC):
    """One typed change to a live ecosystem."""

    @abc.abstractmethod
    def apply_to(
        self, ecosystem: Ecosystem
    ) -> Tuple[Ecosystem, EcosystemDelta]:
        """Return the mutated ecosystem copy plus the delta record."""

    def describe(self) -> str:  # pragma: no cover - trivial default
        return type(self).__name__


@dataclasses.dataclass(frozen=True)
class AddService(Mutation):
    """A new service launches (appended at the end of the catalog order)."""

    profile: ServiceProfile

    def apply_to(
        self, ecosystem: Ecosystem
    ) -> Tuple[Ecosystem, EcosystemDelta]:
        mutated = ecosystem.with_service_added(self.profile)
        return mutated, EcosystemDelta(mutation=self, added=(self.profile,))

    def describe(self) -> str:
        return f"add_service({self.profile.name})"


@dataclasses.dataclass(frozen=True)
class RemoveService(Mutation):
    """A service shuts down; its accounts disappear with it."""

    service: str

    def apply_to(
        self, ecosystem: Ecosystem
    ) -> Tuple[Ecosystem, EcosystemDelta]:
        profile = ecosystem.service(self.service)
        mutated = ecosystem.with_service_removed(self.service)
        return mutated, EcosystemDelta(mutation=self, removed=(profile,))

    def describe(self) -> str:
        return f"remove_service({self.service})"


@dataclasses.dataclass(frozen=True)
class AddAuthPath(Mutation):
    """A provider adds one authentication path (e.g. a new reset option)."""

    service: str
    path: AuthPath

    def __post_init__(self) -> None:
        if self.path.service != self.service:
            raise ValueError(
                f"path belongs to {self.path.service!r}, not {self.service!r}"
            )

    def apply_to(
        self, ecosystem: Ecosystem
    ) -> Tuple[Ecosystem, EcosystemDelta]:
        old = ecosystem.service(self.service)
        if self.path in old.auth_paths:
            raise ValueError(
                f"{self.service!r} already offers {self.path.describe()}"
            )
        new = dataclasses.replace(
            old, auth_paths=old.auth_paths + (self.path,)
        )
        mutated = ecosystem.with_services_replaced({self.service: new})
        return mutated, EcosystemDelta(mutation=self, replaced=((old, new),))

    def describe(self) -> str:
        return f"add_auth_path({self.service}, {self.path.describe()})"


@dataclasses.dataclass(frozen=True)
class RemoveAuthPath(Mutation):
    """A provider retires one authentication path."""

    service: str
    path: AuthPath

    def apply_to(
        self, ecosystem: Ecosystem
    ) -> Tuple[Ecosystem, EcosystemDelta]:
        old = ecosystem.service(self.service)
        if self.path not in old.auth_paths:
            raise ValueError(
                f"{self.service!r} does not offer {self.path.describe()}"
            )
        new = dataclasses.replace(
            old,
            auth_paths=tuple(p for p in old.auth_paths if p != self.path),
        )
        mutated = ecosystem.with_services_replaced({self.service: new})
        return mutated, EcosystemDelta(mutation=self, replaced=((old, new),))

    def describe(self) -> str:
        return f"remove_auth_path({self.service}, {self.path.describe()})"


@dataclasses.dataclass(frozen=True)
class ChangeMasking(Mutation):
    """A provider changes how it masks one sensitive kind on one platform.

    ``spec=None`` removes the explicit rule, i.e. the kind reverts to being
    shown in full (the measurement's default for unruled kinds).  A change
    that leaves the profile identical yields a no-op delta.
    """

    service: str
    platform: Platform
    kind: PersonalInfoKind
    spec: Optional[MaskSpec]

    def apply_to(
        self, ecosystem: Ecosystem
    ) -> Tuple[Ecosystem, EcosystemDelta]:
        old = ecosystem.service(self.service)
        mask_specs = dict(old.mask_specs)
        key = (self.platform, self.kind)
        if self.spec is None:
            mask_specs.pop(key, None)
        else:
            mask_specs[key] = self.spec
        new = dataclasses.replace(old, mask_specs=mask_specs)
        if new == old:
            return ecosystem, EcosystemDelta(mutation=self)
        mutated = ecosystem.with_services_replaced({self.service: new})
        return mutated, EcosystemDelta(mutation=self, replaced=((old, new),))

    def describe(self) -> str:
        return (
            f"change_masking({self.service}, {self.platform.value}, "
            f"{self.kind.value})"
        )


@dataclasses.dataclass(frozen=True)
class ApplyHardening(Mutation):
    """Deploy a defense transform to some (or all) services.

    ``transform`` is any object exposing ``apply_to_profile`` -- every
    Section VII countermeasure qualifies
    (:class:`~repro.defense.hardening.EmailHardening`,
    :class:`~repro.defense.hardening.SymmetryRepair`,
    :class:`~repro.defense.masking_policy.UnifiedMaskingPolicy`,
    :class:`~repro.defense.builtin_auth.BuiltinAuthUpgrade`).  Restricting
    ``services`` is what turns an all-at-once countermeasure into a staged
    rollout: one mutation per provider or per domain, each producing its
    own delta for the incremental engine to absorb.
    """

    transform: object
    services: Optional[Tuple[str, ...]] = None

    def apply_to(
        self, ecosystem: Ecosystem
    ) -> Tuple[Ecosystem, EcosystemDelta]:
        if self.services is None:
            targets = ecosystem.service_names
        else:
            targets = self.services
        replaced = []
        replacements = {}
        for name in targets:
            old = ecosystem.service(name)
            new = self.transform.apply_to_profile(old)
            if new != old:
                replaced.append((old, new))
                replacements[name] = new
        if not replacements:
            return ecosystem, EcosystemDelta(mutation=self)
        mutated = ecosystem.with_services_replaced(replacements)
        return mutated, EcosystemDelta(
            mutation=self, replaced=tuple(replaced)
        )

    def describe(self) -> str:
        scope = (
            ",".join(self.services) if self.services is not None else "all"
        )
        return f"apply_hardening({type(self.transform).__name__}, {scope})"
