"""Seeded mutation streams: the churn workload generator.

A :class:`MutationStream` draws catalog-faithful mutations against the
*current* state of an evolving ecosystem: services launch (synthesized
through :meth:`repro.catalog.builder.CatalogBuilder.synthesize_service`
with the stream's own explicit rng) and shut down, providers add and
retire reset paths, masking rules drift, and countermeasures land on
individual providers.  The stream is stateless with respect to the
ecosystem -- it reads whatever ecosystem it is handed on each draw and
keeps state only in its seeded rng -- so a ``(seed, initial ecosystem)``
pair replays the same mutation sequence bit-for-bit, which is what makes
the churn benchmarks and the differential suite reproducible run-to-run.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.catalog.builder import CatalogBuilder
from repro.catalog.spec import DEFAULT_SPEC, CatalogSpec
from repro.dynamic.events import (
    AddAuthPath,
    AddService,
    ApplyHardening,
    ChangeMasking,
    Mutation,
    RemoveAuthPath,
    RemoveService,
)
from repro.model.account import AuthPath, AuthPurpose, MaskSpec
from repro.model.ecosystem import Ecosystem
from repro.model.factors import CredentialFactor as CF
from repro.model.factors import PersonalInfoKind as PI
from repro.model.factors import Platform

#: Masking rules churn draws from -- the catalog's deliberately
#: inconsistent pools plus the two extremes.
_MASK_POOL: Tuple[MaskSpec, ...] = (
    MaskSpec(reveal_prefix=6, reveal_suffix=4),
    MaskSpec(reveal_prefix=4, reveal_suffix=2),
    MaskSpec(reveal_middle=(6, 14)),
    MaskSpec(reveal_prefix=10),
    MaskSpec(reveal_suffix=6),
    MaskSpec(reveal_suffix=4),
    MaskSpec(reveal_middle=(4, 10)),
    MaskSpec.hidden(),
    MaskSpec.full(),
)

_MASKABLE_KINDS: Tuple[PI, ...] = (PI.CITIZEN_ID, PI.BANKCARD_NUMBER)

#: Extra knowledge factors for synthesized info-path resets.
_INFO_FACTORS: Tuple[CF, ...] = (
    CF.CITIZEN_ID,
    CF.REAL_NAME,
    CF.BANKCARD_NUMBER,
    CF.SECURITY_QUESTION,
    CF.ADDRESS,
)


class MutationStream:
    """Deterministic generator of feasible mutations for one workload."""

    def __init__(
        self,
        seed: int = 0,
        spec: CatalogSpec = DEFAULT_SPEC,
        prefix: str = "churn",
        min_services: int = 5,
    ) -> None:
        self._rng = random.Random(seed)
        self._builder = CatalogBuilder(spec, seed=seed)
        self._spec = spec
        self._prefix = prefix
        self._min_services = min_services
        self._counter = 0

    def next_mutation(self, ecosystem: Ecosystem) -> Mutation:
        """Draw one mutation that is feasible against ``ecosystem``.

        Kinds that turn out infeasible in the current state (e.g. no
        service exposes a maskable kind) fall through to the next kind;
        ``AddService`` is always feasible, so the draw always succeeds.
        """
        roll = self._rng.random()
        order = (
            self._change_masking
            if roll < 0.25
            else self._add_auth_path
            if roll < 0.45
            else self._remove_auth_path
            if roll < 0.60
            else self._apply_hardening
            if roll < 0.75
            else self._remove_service
            if roll < 0.85
            else self._add_service
        )
        chain = [
            order,
            self._change_masking,
            self._add_auth_path,
            self._remove_auth_path,
            self._apply_hardening,
            self._add_service,
        ]
        for builder in chain:
            mutation = builder(ecosystem)
            if mutation is not None:
                return mutation
        raise AssertionError("AddService is always feasible")  # pragma: no cover

    def take(self, ecosystem: Ecosystem, count: int) -> List[Mutation]:
        """Draw ``count`` mutations, applying each to a scratch copy so the
        sequence is self-consistent without touching ``ecosystem``."""
        mutations: List[Mutation] = []
        current = ecosystem
        for _ in range(count):
            mutation = self.next_mutation(current)
            current, _delta = current.apply(mutation)
            mutations.append(mutation)
        return mutations

    # ------------------------------------------------------------------
    # Mutation builders (None means infeasible right now)
    # ------------------------------------------------------------------

    def _change_masking(self, ecosystem: Ecosystem) -> Optional[Mutation]:
        candidates = []
        for profile in ecosystem:
            for platform in profile.platforms:
                for kind in _MASKABLE_KINDS:
                    if kind in profile.info_on(platform):
                        candidates.append((profile.name, platform, kind))
        if not candidates:
            return None
        name, platform, kind = self._rng.choice(candidates)
        spec = self._rng.choice(_MASK_POOL)
        return ChangeMasking(
            service=name, platform=platform, kind=kind, spec=spec
        )

    def _add_auth_path(self, ecosystem: Ecosystem) -> Optional[Mutation]:
        profile = ecosystem.service(self._rng.choice(ecosystem.service_names))
        platforms = tuple(sorted(profile.platforms, key=lambda p: p.value))
        platform = self._rng.choice(platforms) if platforms else Platform.WEB
        variant = self._rng.random()
        if variant < 0.4:
            factors = frozenset({CF.CELLPHONE_NUMBER, CF.SMS_CODE})
        elif variant < 0.8:
            extras = self._rng.sample(_INFO_FACTORS, 1 + (variant < 0.6))
            factors = frozenset(
                {CF.CELLPHONE_NUMBER, CF.SMS_CODE, *extras}
            )
        else:
            factors = frozenset({CF.EMAIL_ADDRESS, CF.EMAIL_CODE})
        path = AuthPath(
            service=profile.name,
            platform=platform,
            purpose=AuthPurpose.PASSWORD_RESET,
            factors=factors,
        )
        if path in profile.auth_paths:
            return None
        return AddAuthPath(service=profile.name, path=path)

    def _remove_auth_path(self, ecosystem: Ecosystem) -> Optional[Mutation]:
        candidates = [p for p in ecosystem if len(p.auth_paths) >= 2]
        if not candidates:
            return None
        profile = self._rng.choice(candidates)
        path = self._rng.choice(profile.auth_paths)
        return RemoveAuthPath(service=profile.name, path=path)

    def _apply_hardening(self, ecosystem: Ecosystem) -> Optional[Mutation]:
        from repro.defense.builtin_auth import BuiltinAuthUpgrade
        from repro.defense.hardening import EmailHardening, SymmetryRepair
        from repro.defense.masking_policy import UnifiedMaskingPolicy

        transform = self._rng.choice(
            (
                EmailHardening(),
                SymmetryRepair(),
                UnifiedMaskingPolicy(),
                BuiltinAuthUpgrade(),
            )
        )
        targets = transform.targets(ecosystem)
        if not targets:
            return None
        count = min(len(targets), 1 + (self._rng.random() < 0.3))
        picked = tuple(self._rng.sample(targets, count))
        return ApplyHardening(transform=transform, services=picked)

    def _remove_service(self, ecosystem: Ecosystem) -> Optional[Mutation]:
        if len(ecosystem) <= self._min_services:
            return None
        return RemoveService(
            service=self._rng.choice(ecosystem.service_names)
        )

    def _add_service(self, ecosystem: Ecosystem) -> Mutation:
        domains = tuple(self._spec.domains)
        domain = self._rng.choice(domains)
        self._counter += 1
        name = f"{self._prefix}_{domain.name}_{self._counter:04d}"
        while ecosystem.has_service(name):  # pragma: no cover - defensive
            self._counter += 1
            name = f"{self._prefix}_{domain.name}_{self._counter:04d}"
        profile = self._builder.synthesize_service(
            self._counter, domain, self._rng, name=name
        )
        return AddService(profile=profile)


def measure_serve_comparison(
    ecosystem: Ecosystem,
    samples: int,
    stream_seed: int = 2021,
    platform: Platform = Platform.WEB,
) -> Tuple[List[float], List[float]]:
    """Twin-session serve measurement shared by the perf-smoke gate and
    the churn benchmark's serve tier.

    Two :class:`~repro.dynamic.session.DynamicAnalysisSession` instances
    are fed the same mutation stream.  After each mutation the *baseline*
    session drops its level engine before the timed query -- exactly the
    pre-engine serving cost (global depth fixpoints plus a full
    reclassification over whatever per-node memos survived the delta) --
    while the other serves through its delta-maintained engine.  Returns
    ``(incremental_seconds, recompute_seconds)`` per sample; callers pick
    their own aggregate and threshold.
    """
    from repro.dynamic.session import DynamicAnalysisSession
    from repro.obs import monotonic

    session = DynamicAnalysisSession(ecosystem)
    session.level_fractions(platform)
    baseline = DynamicAnalysisSession(ecosystem)
    baseline.level_fractions(platform)
    stream = MutationStream(seed=stream_seed)
    incremental_seconds: List[float] = []
    recompute_seconds: List[float] = []
    for _ in range(samples):
        mutation = stream.next_mutation(session.ecosystem)
        session.mutate(mutation)
        baseline.mutate(mutation)
        baseline_graph = baseline.graph()
        baseline_graph.reset_levels_engine()
        start = monotonic()
        baseline_graph.level_fractions(platform)
        recompute_seconds.append(monotonic() - start)
        start = monotonic()
        session.level_fractions(platform)
        incremental_seconds.append(monotonic() - start)
    return incremental_seconds, recompute_seconds
