"""The what-if defense-rollout planner.

Section VII evaluates each countermeasure as an all-at-once switch.  Real
deployments stage: email hardening lands one provider at a time, symmetry
repair ships domain by domain.  The planner replays such a staged
deployment as a mutation stream through an
:class:`~repro.api.AnalysisService` facade and records the
measurement payload after every step -- dependency-level fractions per
platform, strong/weak edge counts, fringe size -- so the defense layer can
read the *trajectory* of the attack surface, not just its endpoints (e.g.
"after hardening which provider does the one-layer fraction actually
drop?").  Each step is absorbed incrementally; a ten-step rollout costs
ten deltas plus re-aggregation, not ten pipeline rebuilds.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.tdg import DependencyLevel
from repro.dynamic.events import ApplyHardening, Mutation
from repro.model.attacker import AttackerProfile
from repro.model.ecosystem import Ecosystem
from repro.model.factors import Platform


@dataclasses.dataclass(frozen=True)
class RolloutStep:
    """One deployment wave: a label plus the mutations shipped together."""

    label: str
    mutations: Tuple[Mutation, ...]

    def to_dict(self) -> Dict[str, object]:
        """Wire-ready plan record: the label plus each mutation's
        canonical description (mutations themselves can carry full
        service profiles, which describe -- not serialize -- on the wire)."""
        return {
            "label": self.label,
            "mutations": [m.describe() for m in self.mutations],
        }


@dataclasses.dataclass(frozen=True)
class TrajectoryPoint:
    """The measured attack surface after one rollout step."""

    step: str
    services: int
    mutated_services: Tuple[str, ...]
    level_fractions: Mapping[Platform, Mapping[DependencyLevel, float]]
    strong_edges: int
    fringe: int
    #: ``None`` when the planner skipped the (output-bound) weak-edge count.
    weak_edges: Optional[int] = None

    def fraction(self, platform: Platform, level: DependencyLevel) -> float:
        return self.level_fractions[platform][level]

    def to_dict(self) -> Dict[str, object]:
        """Wire-ready document (enums as value strings)."""
        from repro.utils.serialization import level_map_to_dict

        return {
            "step": self.step,
            "services": self.services,
            "mutated_services": list(self.mutated_services),
            "level_fractions": level_map_to_dict(self.level_fractions),
            "strong_edges": self.strong_edges,
            "fringe": self.fringe,
            "weak_edges": self.weak_edges,
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, object]) -> "TrajectoryPoint":
        """Inverse of :meth:`to_dict` (exact round-trip)."""
        from repro.utils.serialization import level_map_from_dict

        return cls(
            step=document["step"],
            services=document["services"],
            mutated_services=tuple(document["mutated_services"]),
            level_fractions=level_map_from_dict(document["level_fractions"]),
            strong_edges=document["strong_edges"],
            fringe=document["fringe"],
            weak_edges=document.get("weak_edges"),
        )


@dataclasses.dataclass(frozen=True)
class RolloutTrajectory:
    """The per-step trajectory of one replayed rollout plan."""

    attacker: AttackerProfile
    points: Tuple[TrajectoryPoint, ...]

    @property
    def baseline(self) -> TrajectoryPoint:
        return self.points[0]

    @property
    def final(self) -> TrajectoryPoint:
        return self.points[-1]

    def series(
        self, platform: Platform, level: DependencyLevel
    ) -> Tuple[float, ...]:
        """One level's fraction across the whole rollout."""
        return tuple(p.fraction(platform, level) for p in self.points)

    def to_dict(self) -> Dict[str, object]:
        """Wire-ready document (attacker profile + per-step points)."""
        from repro.utils.serialization import attacker_profile_to_dict

        return {
            "attacker": attacker_profile_to_dict(self.attacker),
            "points": [point.to_dict() for point in self.points],
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, object]) -> "RolloutTrajectory":
        """Inverse of :meth:`to_dict` (exact round-trip)."""
        from repro.utils.serialization import attacker_profile_from_dict

        return cls(
            attacker=attacker_profile_from_dict(document["attacker"]),
            points=tuple(
                TrajectoryPoint.from_dict(point)
                for point in document["points"]
            ),
        )

    def rows(self) -> List[Tuple[str, ...]]:
        """Bench/table-friendly rows (step, services touched, web direct /
        safe, strong edges, weak edges)."""
        rows: List[Tuple[str, ...]] = []
        for point in self.points:
            rows.append(
                (
                    point.step,
                    str(len(point.mutated_services)),
                    f"{100 * point.fraction(Platform.WEB, DependencyLevel.DIRECT):.1f}%",
                    f"{100 * point.fraction(Platform.WEB, DependencyLevel.SAFE):.1f}%",
                    str(point.strong_edges),
                    "-" if point.weak_edges is None else str(point.weak_edges),
                )
            )
        return rows


def replay_plan(
    ecosystem: Ecosystem,
    steps: Iterable[RolloutStep],
    attacker: Optional[AttackerProfile] = None,
    platforms: Tuple[Platform, ...] = (Platform.WEB, Platform.MOBILE),
    include_weak: bool = False,
) -> RolloutTrajectory:
    """The rollout *engine*: replay ``steps`` over a fresh facade.

    Point 0 is the baseline.  Each wave's mutations route through
    :meth:`~repro.api.AnalysisService.apply` (delta splices on the live
    indexes), and each trajectory point is one planned query batch -- the
    level report and the edge summary share the engine flush, every
    point lands in the facade's version-keyed result cache under its own
    version, and per-step weak-edge counts (``include_weak=True``)
    re-derive only the stream segments each delta dirtied.  This is the
    one place the replay loop lives; the
    :class:`~repro.api.AnalysisService` facade calls it for
    :class:`~repro.api.RolloutQuery`, and :meth:`RolloutPlanner.replay`
    is a deprecated shim over that query.
    """
    from repro.api import AnalysisService, EdgeSummaryQuery, LevelReportQuery

    profile = attacker if attacker is not None else AttackerProfile.baseline()
    service = AnalysisService(ecosystem, attacker=profile)

    def measure(label: str, mutated: Tuple[str, ...]) -> TrajectoryPoint:
        report, edges = service.execute_batch(
            [
                LevelReportQuery(platforms=platforms),
                EdgeSummaryQuery(include_weak=include_weak),
            ]
        )
        return TrajectoryPoint(
            step=label,
            services=len(service),
            mutated_services=mutated,
            level_fractions=report.fractions,
            strong_edges=edges.strong_edges,
            fringe=edges.fringe,
            weak_edges=edges.weak_edges,
        )

    points = [measure("baseline", ())]
    for step in steps:
        touched: List[str] = []
        for mutation in step.mutations:
            receipt = service.apply(mutation)
            touched.extend(receipt.delta.touched_services)
        points.append(measure(step.label, tuple(touched)))
    return RolloutTrajectory(attacker=profile, points=tuple(points))


class RolloutPlanner:
    """Replays staged hardening plans and records their trajectories.

    .. deprecated:: :meth:`replay` delegates to the
       :class:`~repro.api.AnalysisService` facade; new code should
       execute a :class:`~repro.api.RolloutQuery` directly (the engine
       itself is :func:`replay_plan`).
    """

    def __init__(
        self,
        ecosystem: Ecosystem,
        attacker: Optional[AttackerProfile] = None,
        platforms: Tuple[Platform, ...] = (Platform.WEB, Platform.MOBILE),
        include_weak: bool = False,
    ) -> None:
        self._ecosystem = ecosystem
        self._attacker = (
            attacker if attacker is not None else AttackerProfile.baseline()
        )
        self._platforms = platforms
        # Weak edges are the output-bound frontier (~200k couple records at
        # 201 services); counting them per step is opt-in.  The count
        # itself streams through ``iter_weak_edges`` either way.
        self._include_weak = include_weak

    def replay(self, steps: Iterable[RolloutStep]) -> RolloutTrajectory:
        """Replay ``steps`` over a fresh facade; point 0 is the baseline.

        .. deprecated:: delegates to :class:`~repro.api.AnalysisService`
           (a :class:`~repro.api.RolloutQuery` with explicit steps).
        """
        warnings.warn(
            "RolloutPlanner.replay is a delegating shim; query the "
            "repro.api.AnalysisService facade (RolloutQuery) directly",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.api import AnalysisService, RolloutQuery

        service = AnalysisService(self._ecosystem, attacker=self._attacker)
        return service.execute(
            RolloutQuery(
                steps=tuple(steps),
                platforms=tuple(self._platforms),
                include_weak=self._include_weak,
            )
        )


# ----------------------------------------------------------------------
# Plan builders
# ----------------------------------------------------------------------


def per_service_rollout(
    transform: object,
    ecosystem: Ecosystem,
    prefix: Optional[str] = None,
) -> Tuple[RolloutStep, ...]:
    """One step per service the transform actually modifies.

    ``transform`` is any defense exposing ``targets(ecosystem)`` and
    ``apply_to_profile`` (all four Section VII countermeasures do).
    """
    prefix = prefix if prefix is not None else type(transform).__name__
    return tuple(
        RolloutStep(
            label=f"{prefix}:{name}",
            mutations=(
                ApplyHardening(transform=transform, services=(name,)),
            ),
        )
        for name in transform.targets(ecosystem)
    )


def per_domain_rollout(
    transform: object,
    ecosystem: Ecosystem,
    prefix: Optional[str] = None,
) -> Tuple[RolloutStep, ...]:
    """One step per service *domain*, shipping every target in the domain."""
    prefix = prefix if prefix is not None else type(transform).__name__
    by_domain: Dict[str, List[str]] = {}
    for name in transform.targets(ecosystem):
        by_domain.setdefault(ecosystem.service(name).domain, []).append(name)
    return tuple(
        RolloutStep(
            label=f"{prefix}:{domain}",
            mutations=(
                ApplyHardening(transform=transform, services=tuple(names)),
            ),
        )
        for domain, names in by_domain.items()
    )


def email_hardening_rollout(
    ecosystem: Ecosystem, hardening: Optional[object] = None
) -> Tuple[RolloutStep, ...]:
    """The paper's email countermeasure, one provider at a time."""
    from repro.defense.hardening import EmailHardening

    transform = hardening if hardening is not None else EmailHardening()
    return per_service_rollout(transform, ecosystem, prefix="email")


def symmetry_repair_rollout(
    ecosystem: Ecosystem, repair: Optional[object] = None
) -> Tuple[RolloutStep, ...]:
    """The paper's asymmetry countermeasure, repaired domain by domain."""
    from repro.defense.hardening import SymmetryRepair

    transform = repair if repair is not None else SymmetryRepair()
    return per_domain_rollout(transform, ecosystem, prefix="symmetry")
