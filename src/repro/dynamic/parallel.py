"""Process-parallel stage-1/2 report construction for cold builds.

The cold start of a :class:`~repro.dynamic.session.DynamicAnalysisSession`
spends almost all of its time in the attacker-independent per-profile
pipeline -- :meth:`~repro.core.authproc.AuthenticationProcess.analyze_profile`
plus :meth:`~repro.core.collection.PersonalInfoCollection.collect_from_profile`
for every service -- before any index or graph exists.  That work is
embarrassingly parallel: both analyzers are stateless, each profile's
reports depend on nothing but the profile, and the inputs/outputs pickle
small (profiles and reports are flat frozen dataclasses, under ~2 KB
each).  At the 10k-30k service tiers it dominates the cold build, so
this module shards it across a :mod:`multiprocessing` pool.

Correctness constraints the sharding must respect:

- **Report order is load-bearing.**  Node order -- and therefore the
  interned id-space of :class:`~repro.core.ids.Interner` and every
  stream cursor watermark -- derives from the ``auth_reports`` dict's
  insertion order.  Chunks are therefore *contiguous* slices of the
  profile sequence and results are merged back in chunk order, so the
  merged dicts iterate exactly as a serial build's would.
- **Workers are processes, not threads** (the pipeline is pure-Python
  CPU work), forked when the platform supports it so profile objects
  are inherited rather than re-imported.

``build_reports`` degrades to the serial loop whenever a pool cannot
pay for itself (one worker, tiny ecosystems, single-CPU hosts) and
always returns a :class:`ColdBuildStats` describing what actually ran,
which the session surfaces through the ``repro_session_cold_build_*``
instrumentation gauges.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
from typing import Dict, List, Sequence, Tuple

from repro.core.authproc import AuthenticationProcess, ServiceAuthReport
from repro.core.collection import CollectionReport, PersonalInfoCollection
from repro.model.account import ServiceProfile

__all__ = ["ColdBuildStats", "build_reports"]

#: Below this many profiles a pool's spawn/IPC overhead outweighs the
#: pipeline work; the serial loop wins.
MIN_PARALLEL_PROFILES = 256


@dataclasses.dataclass(frozen=True)
class ColdBuildStats:
    """What one cold report build actually did (serial or pooled)."""

    profiles: int
    workers: int
    chunks: int

    @property
    def pooled(self) -> bool:
        return self.workers > 1


ReportPair = Tuple[
    Dict[str, ServiceAuthReport], Dict[str, CollectionReport]
]


def _analyze_chunk(profiles: Sequence[ServiceProfile]) -> ReportPair:
    """One worker's share: stage-1/2 reports for a contiguous profile
    slice.  Top-level so it pickles under the spawn start method too."""
    authproc = AuthenticationProcess()
    collection = PersonalInfoCollection()
    auth: Dict[str, ServiceAuthReport] = {}
    collected: Dict[str, CollectionReport] = {}
    for profile in profiles:
        auth[profile.name] = authproc.analyze_profile(profile)
        collected[profile.name] = collection.collect_from_profile(profile)
    return auth, collected


def _chunk(
    profiles: Sequence[ServiceProfile], workers: int
) -> List[Sequence[ServiceProfile]]:
    """Contiguous near-even slices, order-preserving (see module doc)."""
    total = len(profiles)
    size, extra = divmod(total, workers)
    chunks: List[Sequence[ServiceProfile]] = []
    start = 0
    for position in range(workers):
        stop = start + size + (1 if position < extra else 0)
        if stop > start:
            chunks.append(profiles[start:stop])
        start = stop
    return chunks


def resolve_workers(requested: int | None) -> int:
    """Normalize a worker request: ``None``/0/1 mean serial, negative
    means one per CPU."""
    if requested is None:
        return 1
    if requested < 0:
        return os.cpu_count() or 1
    return max(1, requested)


def build_reports(
    profiles: Sequence[ServiceProfile], workers: int | None = None
) -> Tuple[
    Dict[str, ServiceAuthReport], Dict[str, CollectionReport], ColdBuildStats
]:
    """Stage-1/2 reports for every profile, sharded across ``workers``
    processes when that can pay for itself.

    The merged dicts iterate in the order of ``profiles`` regardless of
    worker count -- the invariant every downstream id and cursor
    depends on.
    """
    profiles = list(profiles)
    workers = resolve_workers(workers)
    workers = min(workers, len(profiles))
    if workers <= 1 or len(profiles) < MIN_PARALLEL_PROFILES:
        auth, collected = _analyze_chunk(profiles)
        return auth, collected, ColdBuildStats(len(profiles), 1, 1)
    chunks = _chunk(profiles, workers)
    method = (
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else None
    )
    context = multiprocessing.get_context(method)
    with context.Pool(processes=workers) as pool:
        results = pool.map(_analyze_chunk, chunks)
    auth = {}
    collected = {}
    for chunk_auth, chunk_collected in results:
        auth.update(chunk_auth)
        collected.update(chunk_collected)
    return auth, collected, ColdBuildStats(
        len(profiles), workers, len(chunks)
    )
