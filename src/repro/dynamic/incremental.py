"""Delta maintenance of the indexed TDG engine.

:func:`apply_delta` absorbs one :class:`~repro.dynamic.events.EcosystemDelta`
into a set of live :class:`~repro.core.tdg.TransformationDependencyGraph`
instances (typically one per attacker profile, sharing an
:class:`~repro.core.index.EcosystemIndex` via ``analyze_many``) without
rebuilding anything:

1. **Node derivation** -- new :class:`~repro.core.tdg.TDGNode` objects are
   derived once per touched profile and shared by every graph.
   Replacements whose derived node is unchanged (e.g. a masking tweak that
   reveals the same positions) are dropped here, so a profile-level change
   below node granularity costs nothing.
2. **Postings maintenance** -- the shared ecosystem index absorbs each
   node change exactly once (:meth:`EcosystemIndex.apply_node_change`
   splices factor -> provider, info-kind -> holder, and masked-view
   postings in service-ordinal order, bit-for-bit what a rebuild over the
   mutated node set would produce), then each live attacker view splices
   its per-factor provider postings
   (:meth:`AttackerIndex.update_for_node`), reporting which factors'
   provider sets actually moved.
3. **Reachable invalidation + level-engine routing** -- each graph drops
   only the memoized coverage / parent / couple / combining entries
   reachable from the touched services and moved factors, with the
   reachable set read off the index's reverse-dependency postings
   (:meth:`TransformationDependencyGraph.invalidate_after_delta`).  The
   dependency-level fixpoints are *not* dropped: the delta's scope is
   routed into the graph's
   :class:`~repro.levels.DepthFixpointEngine`, which maintains both depth
   maps incrementally (delta-BFS from the touched cone, bounded
   re-derivation for removals and depth increases) and reclassifies only
   the level entries the delta can reach, lazily on the next query.

The differential suite (``tests/test_dynamic_equivalence.py``) locks every
incrementally-maintained state against a from-scratch rebuild, including
posting order and Couple File record order.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.index import MASKABLE_FACTORS
from repro.core.tdg import TDGNode, TransformationDependencyGraph
from repro.dynamic.events import EcosystemDelta

#: One node change: (service name, old node or None, new node or None).
NodeChange = Tuple[str, Optional[TDGNode], Optional[TDGNode]]


def apply_delta(
    graphs: Iterable[TransformationDependencyGraph],
    delta: EcosystemDelta,
    node_overrides: Optional[Mapping[str, TDGNode]] = None,
) -> None:
    """Absorb ``delta`` into every graph in place.

    Graphs built over the same node set through ``analyze_many`` share one
    ecosystem index; it is updated exactly once regardless of how many
    attacker views sit on top of it.  Graphs that never built their indexes
    hold no memoized state (every memo is computed through the indexes), so
    for them only the node set is updated and the lazy build stays correct.

    ``node_overrides`` supplies pre-derived nodes for touched services;
    the session layer uses it to derive nodes from its maintained
    stage-1/2 reports (the ActFort derivation) rather than the default
    :meth:`~repro.core.tdg.TransformationDependencyGraph.node_from_profile`
    path -- whichever derivation built the graphs must also feed their
    deltas.
    """
    graphs = tuple(graphs)
    if not graphs or delta.is_noop:
        return
    overrides = node_overrides if node_overrides is not None else {}
    new_nodes: Dict[str, TDGNode] = {}
    for profile in delta.added:
        new_nodes[profile.name] = overrides.get(
            profile.name
        ) or TransformationDependencyGraph.node_from_profile(profile)
    for _old, new_profile in delta.replaced:
        new_nodes[new_profile.name] = overrides.get(
            new_profile.name
        ) or TransformationDependencyGraph.node_from_profile(new_profile)
    updated_indexes: Set[int] = set()
    for graph in graphs:
        _apply_to_graph(graph, delta, new_nodes, updated_indexes)


def _node_changes(
    graph: TransformationDependencyGraph,
    delta: EcosystemDelta,
    new_nodes: Dict[str, TDGNode],
) -> List[NodeChange]:
    """This graph's effective node changes (node-level no-ops dropped)."""
    changes: List[NodeChange] = []
    for profile in delta.added:
        if profile.name in graph:
            raise ValueError(
                f"graph already has a node for {profile.name!r}"
            )
        changes.append((profile.name, None, new_nodes[profile.name]))
    for profile in delta.removed:
        changes.append((profile.name, graph.node(profile.name), None))
    for _old_profile, new_profile in delta.replaced:
        old_node = graph.node(new_profile.name)
        new_node = new_nodes[new_profile.name]
        if old_node != new_node:
            changes.append((new_profile.name, old_node, new_node))
    return changes


def _apply_to_graph(
    graph: TransformationDependencyGraph,
    delta: EcosystemDelta,
    new_nodes: Dict[str, TDGNode],
    updated_indexes: Set[int],
) -> None:
    changes = _node_changes(graph, delta, new_nodes)
    if not changes:
        return

    # Maskable factors whose masked-view postings moved (attacker
    # independent; drives the combining-cache invalidation).
    combining: Set = set()
    for _name, old, new in changes:
        for factor, (kind, _length) in MASKABLE_FACTORS.items():
            old_positions = (
                old.pia_partial.get(kind, frozenset())
                if old is not None
                else frozenset()
            )
            new_positions = (
                new.pia_partial.get(kind, frozenset())
                if new is not None
                else frozenset()
            )
            if old_positions != new_positions:
                combining.add(factor)

    eco_index = graph._eco_index
    if eco_index is not None and id(eco_index) not in updated_indexes:
        updated_indexes.add(id(eco_index))
        for name, old, new in changes:
            eco_index.apply_node_change(name, old, new)

    for name, _old, new in changes:
        if new is None:
            del graph._nodes[name]
        else:
            graph._nodes[name] = new

    changed_factors: Set = set()
    attacker_view = graph._attacker_index
    if attacker_view is not None:
        for name, old, new in changes:
            changed_factors |= attacker_view.update_for_node(name, old, new)

    touched = frozenset(name for name, _old, _new in changes)
    changed_names = delta.added_names | delta.removed_names
    graph.invalidate_after_delta(
        touched_services=touched,
        affected_factors=frozenset(changed_factors) | frozenset(combining),
        combining_factors=frozenset(combining),
        changed_names=changed_names,
    )
    # Cached forward closures are *revalidated*, not dropped: a delta that
    # never reaches a closure's compromised support set leaves the PAV
    # untouched (safe services are inert to the fixpoint), so the cache
    # survives most churn.  A genuinely-reaching delta only marks the
    # record dirty with per-service node snapshots; the next PAV query
    # resumes the fixpoint from the record's per-round support postings,
    # reusing every round whose support did not move
    # (:meth:`~repro.core.strategy.StrategyEngine.forward_closure`).
    graph.revalidate_closures(changes)
