"""The mutate()/query() serving layer over a live ecosystem.

:class:`DynamicAnalysisSession` is what a long mutation stream drives: it
owns the current :class:`~repro.model.ecosystem.Ecosystem`, one indexed
:class:`~repro.core.tdg.TransformationDependencyGraph` per attacker
profile (sharing the attacker-independent index through ``analyze_many``),
and the stage-1/2 reports the measurement study aggregates.  Every
:meth:`mutate` produces an :class:`~repro.dynamic.events.EcosystemDelta`,
feeds it to the incremental maintainer
(:func:`repro.dynamic.incremental.apply_delta`), and re-derives the
stage-1/2 reports for exactly the touched services -- so a mutation costs
a handful of postings splices instead of an O(ecosystem) pipeline rebuild,
and :meth:`query` serves from memoized state that survived the delta.

The dependency-level payload is served by each graph's
:class:`~repro.levels.DepthFixpointEngine`: deltas are routed into the
engine (not answered by dropping the depth fixpoints), which delta-BFSes
the affected cone on the next level query, so mutate+query stays
sub-linear in ecosystem size.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.core.authproc import AuthenticationProcess, ServiceAuthReport
from repro.core.collection import CollectionReport, PersonalInfoCollection
from repro.core.tdg import (
    DependencyLevel,
    TransformationDependencyGraph,
)
from repro.dynamic.events import EcosystemDelta, Mutation
from repro.dynamic.incremental import apply_delta
from repro.model.attacker import AttackerProfile
from repro.model.ecosystem import Ecosystem
from repro.model.factors import Platform
from repro.obs import DEFAULT_SECONDS_BUCKETS, Instrumentation


class DynamicAnalysisSession:
    """A live, incrementally-maintained analysis over one ecosystem.

    ``attackers`` maps labels to profiles; every labelled graph is kept
    consistent under mutations (one shared ecosystem index, one attacker
    view each).  The single-profile convenience form
    ``DynamicAnalysisSession(ecosystem)`` analyzes the paper's baseline
    attacker under the label ``"baseline"``.
    """

    def __init__(
        self,
        ecosystem: Ecosystem,
        attacker: Optional[AttackerProfile] = None,
        attackers: Optional[Mapping[str, AttackerProfile]] = None,
        instrumentation: Optional[Instrumentation] = None,
        build_workers: Optional[int] = None,
    ) -> None:
        profiles = self._resolve_attackers(attacker, attackers)
        self._ecosystem: Optional[Ecosystem] = ecosystem
        self._authproc = AuthenticationProcess()
        self._collection = PersonalInfoCollection()
        # The attacker-independent stage-1/2 pipeline is the cold-build
        # hot path; ``build_workers`` shards it across a process pool
        # (contiguous chunks, so report -- and therefore id -- order is
        # identical to the serial loop's).
        from repro.dynamic.parallel import build_reports

        auth, collected, build_stats = build_reports(
            list(ecosystem), workers=build_workers
        )
        self._auth_reports: Dict[str, ServiceAuthReport] = auth
        self._collection_reports: Dict[str, CollectionReport] = collected
        self._finish_init(profiles, instrumentation, build_stats)

    @classmethod
    def from_reports(
        cls,
        auth_reports: Mapping[str, ServiceAuthReport],
        collection_reports: Mapping[str, CollectionReport],
        attacker: Optional[AttackerProfile] = None,
        attackers: Optional[Mapping[str, AttackerProfile]] = None,
        instrumentation: Optional[Instrumentation] = None,
    ) -> "DynamicAnalysisSession":
        """A session over pre-built stage-1/2 reports (the probe path).

        This is how :class:`~repro.api.AnalysisService` fronts ActFort's
        probe mode: the reports came from black-box observation, there is
        no :class:`~repro.model.ecosystem.Ecosystem` behind them, so the
        session is read-only -- every query works, :meth:`mutate` raises.
        """
        session = cls.__new__(cls)
        profiles = cls._resolve_attackers(attacker, attackers)
        session._ecosystem = None
        session._authproc = AuthenticationProcess()
        session._collection = PersonalInfoCollection()
        session._auth_reports = dict(auth_reports)
        session._collection_reports = dict(collection_reports)
        session._finish_init(profiles, instrumentation)
        return session

    @staticmethod
    def _resolve_attackers(
        attacker: Optional[AttackerProfile],
        attackers: Optional[Mapping[str, AttackerProfile]],
    ) -> Dict[str, AttackerProfile]:
        if attacker is not None and attackers is not None:
            raise ValueError("pass either attacker or attackers, not both")
        if attackers is not None:
            profiles = dict(attackers)
            if not profiles:
                raise ValueError("attackers mapping must be non-empty")
            return profiles
        if attacker is not None:
            return {"baseline": attacker}
        return {"baseline": AttackerProfile.baseline()}

    def _finish_init(
        self,
        profiles: Dict[str, AttackerProfile],
        instrumentation: Optional[Instrumentation] = None,
        build_stats=None,
    ) -> None:
        self._attackers = profiles
        self._graphs: Optional[
            Dict[str, TransformationDependencyGraph]
        ] = None
        self._pending_document = None
        self._ecosystem_pending = False
        self._restored_size: Optional[int] = None
        self._init_obs(instrumentation, build_stats)
        self._build_graphs()
        self._deltas: List[EcosystemDelta] = []
        # The Section IV counter view; built on the first measurement()
        # call, then folded per touched service on every mutation.  A
        # restored session instead hydrates the view from the snapshot's
        # fold counters (see ``_ensure_measurement_view``).
        self._measurement_view = None
        self._measurement_counters = None
        self._version_base = 0
        self._history_base: List[str] = []

    def _init_obs(
        self,
        instrumentation: Optional[Instrumentation],
        build_stats,
    ) -> None:
        # One shared handle across every attacker view, attached before
        # any lazy engine exists so all engine layers resolve their
        # registry children from it (label = the attacker label).
        self._obs = (
            instrumentation if instrumentation is not None
            else Instrumentation()
        )
        self._mutations_counter = self._obs.counter(
            "repro_session_mutations_total",
            "Mutations applied to the live session, by mutation kind.",
            labels=("kind",),
        )
        self._apply_seconds = self._obs.histogram(
            "repro_session_apply_seconds",
            "Wall time one mutation took to absorb (delta + reports).",
            buckets=DEFAULT_SECONDS_BUCKETS,
        )
        # Cold-build pool accounting and id-space sizing.  The interner
        # gauges are refreshed on read through ``interner_stats`` --
        # here they just get their cold values.
        if build_stats is not None:
            workers_gauge = self._obs.gauge(
                "repro_session_cold_build_workers",
                "Worker processes the cold report build sharded across.",
            )
            workers_gauge.set(build_stats.workers)
            chunks_gauge = self._obs.gauge(
                "repro_session_cold_build_chunks",
                "Contiguous profile chunks the cold report build used.",
            )
            chunks_gauge.set(build_stats.chunks)
        self._ids_live_gauge = self._obs.gauge(
            "repro_ids_live",
            "Live interned ids per id table.",
            labels=("table",),
        )
        self._ids_high_water_gauge = self._obs.gauge(
            "repro_ids_high_water",
            "Ids ever assigned per id table (bitmask width).",
            labels=("table",),
        )

    def _build_graphs(self) -> None:
        # Nodes derive from the maintained stage-1/2 reports -- the exact
        # ActFort derivation -- so the session agrees bit-for-bit with
        # ``ActFort.from_ecosystem`` / ``MeasurementStudy`` at every state
        # (the profile-direct ``from_ecosystem`` path differs in node
        # detail, e.g. full-union partial promotion and path order).
        nodes = TransformationDependencyGraph.nodes_from_reports(
            self._auth_reports, self._collection_reports
        )
        graphs = TransformationDependencyGraph.analyze_many(
            nodes, self._attackers.values()
        )
        self._graphs = dict(zip(self._attackers, graphs))
        for label, graph in self._graphs.items():
            graph.attach_instrumentation(self._obs, label)
        self.interner_stats()
        # Indexes must exist eagerly: mutate() maintains them in place, and
        # a lazily-built index cannot be spliced before it exists.
        for graph in graphs:
            graph.attacker_index()

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------

    def snapshot(self):
        """This session's full analysis state as a JSON document
        (``repro/session-snapshot@1``) -- see
        :func:`repro.dynamic.snapshot.session_snapshot`."""
        # A restored session that has absorbed no mutations IS its source
        # snapshot; re-emit the document instead of re-encoding, so
        # migrate chains (snapshot -> restore -> snapshot) stay O(1).
        if self._pending_document is not None and not self._deltas:
            return self._pending_document
        from repro.dynamic.snapshot import session_snapshot

        return session_snapshot(self)

    @classmethod
    def restore(
        cls,
        document,
        instrumentation: Optional[Instrumentation] = None,
    ) -> "DynamicAnalysisSession":
        """Warm-start a session from a :meth:`snapshot` document -- see
        :func:`repro.dynamic.snapshot.restore_session`."""
        from repro.dynamic.snapshot import restore_session

        return restore_session(document, instrumentation=instrumentation)

    @classmethod
    def _from_snapshot(
        cls,
        document,
        attackers: Dict[str, AttackerProfile],
        instrumentation: Optional[Instrumentation] = None,
    ) -> "DynamicAnalysisSession":
        """The lazy half of :func:`~repro.dynamic.snapshot.restore_session`:
        profile decoding, report decoding, and graph construction are all
        deferred to first access, so restore itself costs only the
        attacker decode and the dict bookkeeping."""
        session = cls.__new__(cls)
        session._ecosystem = None
        session._ecosystem_pending = document.get("ecosystem") is not None
        session._authproc = AuthenticationProcess()
        session._collection = PersonalInfoCollection()
        session._auth_reports = {}
        session._collection_reports = {}
        session._attackers = dict(attackers)
        session._graphs = None
        session._pending_document = document
        session._restored_size = len(document["auth_reports"])
        session._init_obs(instrumentation, None)
        session._deltas = []
        session._measurement_view = None
        session._measurement_counters = document.get("measurement")
        session._version_base = document["version"]
        session._history_base = list(document["history"])
        return session

    def _materialize(self) -> None:
        """Decode the deferred snapshot reports and build the graphs
        (idempotent; no-op for sessions that were built live)."""
        if self._graphs is not None:
            return
        from repro.dynamic.snapshot import decode_reports

        with self._obs.span("session.materialize") as span:
            auth, collection = decode_reports(self._pending_document)
            self._auth_reports = auth
            self._collection_reports = collection
            self._build_graphs()
            span.set_attribute("services", len(auth))

    def _refresh_reports(self, profile) -> None:
        self._auth_reports[profile.name] = self._authproc.analyze_profile(
            profile
        )
        self._collection_reports[profile.name] = (
            self._collection.collect_from_profile(profile)
        )

    def _node_from_reports(self, name: str):
        """Derive one service's node from its maintained reports."""
        (node,) = TransformationDependencyGraph.nodes_from_reports(
            {name: self._auth_reports[name]},
            {name: self._collection_reports[name]},
        )
        return node

    # ------------------------------------------------------------------
    # State accessors
    # ------------------------------------------------------------------

    @property
    def ecosystem(self) -> Optional[Ecosystem]:
        """The current (post-mutation) ecosystem (``None`` for sessions
        built from probe reports, which have no profile backing)."""
        if self._ecosystem is None and self._ecosystem_pending:
            from repro.dynamic.snapshot import decode_ecosystem

            self._ecosystem = decode_ecosystem(self._pending_document)
            self._ecosystem_pending = False
        return self._ecosystem

    @property
    def attackers(self) -> Mapping[str, AttackerProfile]:
        """Label -> profile for every live attacker view."""
        return dict(self._attackers)

    @property
    def instrumentation(self) -> Instrumentation:
        """The shared metrics/tracing handle every engine layer reports
        through (one registry for all attacker views, distinguished by
        the ``attacker`` label)."""
        return self._obs

    def interner_stats(self) -> Dict[str, Dict[str, int]]:
        """Live/high-water sizes of every id table (service names on the
        shared ecosystem index, one signature table per attacker view),
        refreshing the ``repro_ids_*`` gauges as a side effect."""
        self._materialize()
        eco = self.graph().ecosystem_index()
        stats: Dict[str, Dict[str, int]] = {
            "services": {
                "live": len(eco.ids),
                "high_water": eco.ids.high_water,
            }
        }
        for label, graph in self._graphs.items():
            view = graph.parents_view()
            stats[f"signatures[{label}]"] = {
                "live": view.interner_size(),
                "high_water": view.interner_size(),
            }
        for table, sizes in stats.items():
            self._ids_live_gauge.labels(table=table).set(sizes["live"])
            self._ids_high_water_gauge.labels(table=table).set(
                sizes["high_water"]
            )
        return stats

    @property
    def version(self) -> int:
        """The mutation watermark: mutations applied across the session's
        whole lineage (a restored session resumes from its snapshot's
        watermark, so version-keyed cache entries survive migration)."""
        return self._version_base + len(self._deltas)

    @property
    def history(self) -> Tuple[EcosystemDelta, ...]:
        """Every delta applied *by this process*, in order (pre-restore
        deltas survive only as :attr:`history_digest` strings)."""
        return tuple(self._deltas)

    @property
    def history_digest(self) -> Tuple[str, ...]:
        """One ``describe()`` string per mutation across the session's
        whole lineage, including mutations absorbed before a snapshot
        this session was restored from."""
        return tuple(self._history_base) + tuple(
            delta.describe() for delta in self._deltas
        )

    @property
    def auth_reports(self) -> Mapping[str, ServiceAuthReport]:
        """Maintained stage-1 reports (re-derived only for touched services)."""
        self._materialize()
        return dict(self._auth_reports)

    @property
    def collection_reports(self) -> Mapping[str, CollectionReport]:
        """Maintained stage-2 reports (re-derived only for touched services)."""
        self._materialize()
        return dict(self._collection_reports)

    def graph(
        self, attacker: Optional[str] = None
    ) -> TransformationDependencyGraph:
        """The maintained graph for one attacker label (default: first)."""
        self._materialize()
        if attacker is None:
            return next(iter(self._graphs.values()))
        return self._graphs[attacker]

    def __len__(self) -> int:
        if self._graphs is None:
            return self._restored_size
        return len(self._auth_reports)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def mutate(self, mutation: Mutation) -> EcosystemDelta:
        """Apply one mutation and absorb its delta into every live graph."""
        if self.ecosystem is None:
            raise RuntimeError(
                "this session was built from probe reports; there is no "
                "ecosystem to mutate"
            )
        self._materialize()
        # A restored session must hydrate the measurement view from its
        # snapshot counters *before* the first fold, or the counters go
        # stale the moment a touched service's reports refresh.
        if self._measurement_counters is not None:
            self._ensure_measurement_view()
        with self._obs.span(
            "session.apply", mutation=mutation.describe()
        ) as span:
            mutated, delta = self._ecosystem.apply(mutation)
            self._ecosystem = mutated
            if not delta.is_noop:
                node_overrides = {}
                for profile in delta.added:
                    self._refresh_reports(profile)
                    self._fold_measurement(profile.name, None, None)
                    node_overrides[profile.name] = self._node_from_reports(
                        profile.name
                    )
                for _old, new_profile in delta.replaced:
                    name = new_profile.name
                    old_auth = self._auth_reports.get(name)
                    old_collection = self._collection_reports.get(name)
                    self._refresh_reports(new_profile)
                    self._fold_measurement(name, old_auth, old_collection)
                    node_overrides[name] = self._node_from_reports(name)
                apply_delta(
                    self._graphs.values(), delta, node_overrides=node_overrides
                )
                for profile in delta.removed:
                    old_auth = self._auth_reports.pop(profile.name, None)
                    old_collection = self._collection_reports.pop(
                        profile.name, None
                    )
                    self._fold_measurement(
                        profile.name, old_auth, old_collection
                    )
            span.set_attribute("noop", delta.is_noop)
        self._mutations_counter.labels(kind=type(mutation).__name__).inc()
        self._apply_seconds.observe(span.duration_seconds)
        self._deltas.append(delta)
        return delta

    def _fold_measurement(self, name, old_auth, old_collection) -> None:
        """Fold one touched service's report refresh into the maintained
        measurement counters (no-op until the view is first built)."""
        if self._measurement_view is None:
            return
        self._measurement_view.update(
            name,
            old_auth,
            self._auth_reports.get(name),
            old_collection,
            self._collection_reports.get(name),
        )

    def replay(
        self, mutations: Iterable[Mutation]
    ) -> Tuple[EcosystemDelta, ...]:
        """Apply a mutation sequence; returns the deltas in order."""
        return tuple(self.mutate(mutation) for mutation in mutations)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(
        self,
        what: Union[str, callable],
        *args,
        attacker: Optional[str] = None,
        **kwargs,
    ):
        """Run a read-only query against a maintained graph.

        ``what`` is either a
        :class:`~repro.core.tdg.TransformationDependencyGraph` method name
        (``session.query("level_fractions", Platform.WEB)``) or a callable
        receiving the graph (``session.query(lambda g: len(g.nodes))``).
        """
        graph = self.graph(attacker)
        if callable(what):
            return what(graph)
        return getattr(graph, what)(*args, **kwargs)

    def measurement(self, attacker: Optional[str] = None):
        """The full Section IV payload, served from the maintained
        counter view.

        The first call folds every current report into a
        :class:`~repro.analysis.measurement.MeasurementAggregator`; every
        mutation afterwards re-folds only the touched services, so
        re-measuring after a delta costs O(touched) plus the level
        engine's incremental fractions -- and equals
        :func:`~repro.analysis.measurement.aggregate_reports` over the
        current reports exactly, float for float.
        """
        self._ensure_measurement_view()
        return self._measurement_view.results(self.graph(attacker))

    def _ensure_measurement_view(self) -> None:
        from repro.analysis.measurement import MeasurementAggregator

        if self._measurement_view is not None:
            return
        if self._measurement_counters is not None:
            # Restored sessions resume the fold from the snapshot's
            # counters -- no report scan, and (decisively for warm-start)
            # no materialization.
            self._measurement_view = MeasurementAggregator.from_counters(
                self._measurement_counters
            )
            self._measurement_counters = None
            return
        self._materialize()
        self._measurement_view = MeasurementAggregator(
            self._auth_reports, self._collection_reports
        )

    def measurement_counters(self):
        """The maintained fold counters as a JSON document (``None`` when
        the counter view was never built and no snapshot carried one);
        the ``measurement`` field of :meth:`snapshot`."""
        if self._measurement_view is not None:
            return self._measurement_view.counters_to_dict()
        return self._measurement_counters

    def level_fractions(
        self, platform: Platform, attacker: Optional[str] = None
    ) -> Dict[DependencyLevel, float]:
        """Section IV-B's dependency-level fractions, served live."""
        return self.graph(attacker).level_fractions(platform)

    def level_report(
        self,
        platforms: Iterable[Platform] = (Platform.WEB, Platform.MOBILE),
        attacker: Optional[str] = None,
    ) -> Dict[Platform, Dict[DependencyLevel, float]]:
        """Level fractions for several platforms off one engine flush
        (the batch form the rollout planner and measurement study use)."""
        return self.graph(attacker).levels_report(platforms)

    def dependency_levels(
        self, platform: Platform, attacker: Optional[str] = None
    ):
        """Per-service dependency levels, served live."""
        return self.graph(attacker).dependency_levels(platform)

    def forward_closure(self, attacker: Optional[str] = None, **kwargs):
        """Scenario 1 (OAAS -> PAV) over a maintained graph.

        Served from the graph-level closure cache
        (:meth:`~repro.core.tdg.TransformationDependencyGraph.closure_cache_get`),
        which mutation deltas revalidate instead of dropping: only a delta
        reaching the closure's compromised support set re-runs the global
        fixpoint.
        """
        from repro.core.strategy import StrategyEngine

        return StrategyEngine(self.graph(attacker)).forward_closure(**kwargs)

    def strong_edge_count(self, attacker: Optional[str] = None) -> int:
        return len(self.graph(attacker).strong_edges())

    def weak_edge_count(self, attacker: Optional[str] = None) -> int:
        """Streamed count (never materializes the Couple File)."""
        return sum(1 for _edge in self.graph(attacker).iter_weak_edges())

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def rebuild(
        self, attacker: Optional[str] = None
    ) -> TransformationDependencyGraph:
        """A from-scratch graph over the current ecosystem.

        Rebuilds the full ActFort pipeline (fresh stage-1/2 reports, fresh
        indexes): this is the oracle the differential suite compares the
        maintained graphs against, and the work :meth:`mutate` replaces at
        serving time.
        """
        from repro.core.actfort import ActFort

        if self.ecosystem is None:
            raise RuntimeError(
                "this session was built from probe reports; there is no "
                "ecosystem to rebuild from"
            )
        label = attacker if attacker is not None else next(iter(self._graphs))
        return ActFort.from_ecosystem(
            self._ecosystem, attacker=self._attackers[label]
        ).tdg()
