"""The incremental ecosystem engine: mutations, delta index maintenance,
and the what-if defense-rollout planner.

The paper's measurement (Section IV) and countermeasure analysis
(Section VII) are one-shot: build the ecosystem, run ActFort, read the
dependency levels.  Real account ecosystems churn -- services appear,
auth paths and masking rules change, defenses roll out gradually -- and
serving that as heavy traffic means per-mutation re-analysis must not pay
an O(ecosystem) rebuild.  This package keeps the indexed TDG engine of
:mod:`repro.core` *live* under change:

- :mod:`repro.dynamic.events` -- the typed mutation model
  (:class:`AddService`, :class:`RemoveService`, :class:`AddAuthPath`,
  :class:`RemoveAuthPath`, :class:`ChangeMasking`,
  :class:`ApplyHardening`) and the :class:`EcosystemDelta` record that
  :meth:`repro.model.ecosystem.Ecosystem.apply` produces.
- :mod:`repro.dynamic.incremental` -- the delta maintainer: updates the
  shared :class:`~repro.core.index.EcosystemIndex` and every live
  :class:`~repro.core.index.AttackerIndex` in place (postings splices, not
  rebuilds) and invalidates only the memoized coverage/parent/couple/level
  entries a delta can reach.
- :mod:`repro.dynamic.session` -- :class:`DynamicAnalysisSession`, the
  ``mutate()``/``query()`` serving layer long mutation streams drive.
- :mod:`repro.dynamic.rollout` -- the what-if planner: replay a staged
  hardening deployment (email hardening one provider at a time, symmetry
  repair per domain) and read the per-step dependency-level trajectory.
- :mod:`repro.dynamic.churn` -- seeded mutation streams for benchmarks
  and differential tests.

Mirroring the indexed engine's discipline, ``tests/test_dynamic_equivalence.py``
locks every incremental state against a from-scratch rebuild bit-for-bit.
"""

from repro.dynamic.churn import MutationStream
from repro.dynamic.events import (
    AddAuthPath,
    AddService,
    ApplyHardening,
    ChangeMasking,
    EcosystemDelta,
    Mutation,
    RemoveAuthPath,
    RemoveService,
)
from repro.dynamic.incremental import apply_delta
from repro.dynamic.rollout import (
    RolloutPlanner,
    replay_plan,
    RolloutStep,
    RolloutTrajectory,
    TrajectoryPoint,
    email_hardening_rollout,
    per_domain_rollout,
    per_service_rollout,
    symmetry_repair_rollout,
)
from repro.dynamic.session import DynamicAnalysisSession

__all__ = [
    "AddAuthPath",
    "AddService",
    "ApplyHardening",
    "ChangeMasking",
    "DynamicAnalysisSession",
    "EcosystemDelta",
    "Mutation",
    "MutationStream",
    "RemoveAuthPath",
    "RemoveService",
    "RolloutPlanner",
    "RolloutStep",
    "RolloutTrajectory",
    "TrajectoryPoint",
    "apply_delta",
    "replay_plan",
    "email_hardening_rollout",
    "per_domain_rollout",
    "per_service_rollout",
    "symmetry_repair_rollout",
]
