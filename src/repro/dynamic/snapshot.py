"""Session snapshot/restore: the serving tier's migration wire format.

A snapshot captures everything a worker needs to warm-start a
:class:`~repro.dynamic.session.DynamicAnalysisSession` **without a cold
build** -- the maintained stage-1/2 reports (so ``authproc`` and the
collection pipeline never re-run), the ecosystem profiles (so the
restored session can keep absorbing mutations), the attacker profiles,
the version/history watermark, and the measurement fold state.  Engine
state (indexes, depth fixpoints, closure records, stream segments) is
deliberately **not** captured: engines rebuild from the restored reports
and the differential suite (``tests/test_snapshot.py``) pins the rebuilt
state bit-for-bit against the live session's incrementally-maintained
one.

Format contract (``repro/session-snapshot@1``):

- one interned ``paths`` table; profiles and stage-1 flows reference it
  by index, so each distinct :class:`~repro.model.account.AuthPath`
  decodes exactly once;
- report and profile lists preserve the session's insertion order --
  the graph layer's ordinal id-space derives from that order, so a
  restored worker reproduces the live worker's enumeration order;
- documents are pure JSON (codecs from
  :mod:`repro.utils.serialization`), with **no timestamps or host
  state**: equal sessions produce byte-equal canonical snapshots (the
  golden-fixture test rides this);
- ``version`` is the mutation watermark; a restored session resumes
  counting from it, so version-keyed cache entries stay addressable
  across a migration.

Compatibility: a reader must reject unknown ``format`` strings (never
guess), and a writer bumps the suffix on any change to field meaning or
order.  See ``docs/serving.md`` for the full compatibility contract.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.utils.serialization import (
    AuthPathTable,
    attacker_profile_from_dict,
    attacker_profile_to_dict,
    auth_report_from_dict,
    auth_report_to_dict,
    collection_report_from_dict,
    collection_report_to_dict,
    service_profile_from_dict,
    service_profile_to_dict,
)

__all__ = [
    "SNAPSHOT_FORMAT",
    "decode_ecosystem",
    "decode_reports",
    "restore_session",
    "session_snapshot",
]

#: The one format this reader/writer pair speaks.
SNAPSHOT_FORMAT = "repro/session-snapshot@1"


def session_snapshot(session) -> Dict[str, Any]:
    """One session as a JSON-serializable snapshot document.

    Raises ``ValueError`` when the ecosystem carries deployed victim
    accounts: the snapshot captures the *analysis* state (profiles and
    reports), not a deployed simulation.
    """
    ecosystem = session.ecosystem
    if ecosystem is not None and ecosystem.accounts:
        raise ValueError(
            "session snapshots capture profiles and reports, not deployed "
            "victim accounts; snapshot the undeployed analysis session"
        )
    table = AuthPathTable()
    profiles: Optional[List[Dict[str, Any]]] = None
    if ecosystem is not None:
        profiles = [
            service_profile_to_dict(profile, table) for profile in ecosystem
        ]
    auth_reports = session.auth_reports
    collection_reports = session.collection_reports
    measurement = session.measurement_counters()
    return {
        "format": SNAPSHOT_FORMAT,
        "version": session.version,
        "attackers": {
            label: attacker_profile_to_dict(profile)
            for label, profile in session.attackers.items()
        },
        "ecosystem": profiles,
        "auth_reports": [
            auth_report_to_dict(report, table)
            for report in auth_reports.values()
        ],
        "collection_reports": [
            collection_report_to_dict(report)
            for report in collection_reports.values()
        ],
        "paths": table.documents,
        "history": list(session.history_digest),
        "measurement": measurement,
    }


def decode_reports(
    document: Dict[str, Any],
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Materialize the stage-1/2 report maps from a snapshot document
    (the deferred half of :func:`restore_session`)."""
    paths = AuthPathTable.decode(document["paths"])
    auth = {
        entry["service"]: auth_report_from_dict(entry, paths)
        for entry in document["auth_reports"]
    }
    collection = {
        entry["service"]: collection_report_from_dict(entry)
        for entry in document["collection_reports"]
    }
    return auth, collection


def restore_session(document: Dict[str, Any], instrumentation=None):
    """Warm-start a session from a snapshot document.

    The restored session is ready to serve immediately: only the attacker
    set and the version watermark decode eagerly (microseconds), while the
    profiles, report maps, and analysis graphs materialize lazily on
    first access -- decoded from the snapshot, **never** re-derived
    through the cold stage-1/2 pipeline.  Equality with the live session
    is the differential suite's contract, not an approximation.
    """
    from repro.dynamic.session import DynamicAnalysisSession

    fmt = document.get("format")
    if fmt != SNAPSHOT_FORMAT:
        raise ValueError(
            f"unsupported snapshot format {fmt!r} "
            f"(this reader speaks {SNAPSHOT_FORMAT!r})"
        )
    attackers = {
        label: attacker_profile_from_dict(entry)
        for label, entry in document["attackers"].items()
    }
    if not attackers:
        raise ValueError("snapshot names no attacker profiles")
    return DynamicAnalysisSession._from_snapshot(
        document,
        attackers=attackers,
        instrumentation=instrumentation,
    )


def decode_ecosystem(document: Dict[str, Any]):
    """Materialize the profile-backed ecosystem from a snapshot document
    (``None`` for probe-report snapshots, which have no profile backing)."""
    from repro.model.ecosystem import Ecosystem

    if document.get("ecosystem") is None:
        return None
    paths = AuthPathTable.decode(document["paths"])
    return Ecosystem(
        service_profile_from_dict(entry, paths)
        for entry in document["ecosystem"]
    )
