"""Churn tier: the incremental engine under a 500-mutation stream at the
1000-service scale.

The scaling benchmark measures one-shot analysis; this tier measures the
*serving* workload the incremental engine exists for: a long stream of
ecosystem mutations (services launching/retiring, auth paths and masking
rules drifting, countermeasures landing per provider) interleaved with
dependency-level queries.  Three costs are reported:

- **incremental update** -- ``session.mutate()``: delta apply, stage-1/2
  report refresh for touched services, postings splices, reachable-only
  invalidation;
- **full rebuild** (sampled) -- the ActFort pipeline rebuilt from scratch
  over the current ecosystem to the same ready-to-serve state, which is
  what every mutation would cost without the incremental engine;
- **query-after-update vs query-after-rebuild** -- the Section IV-B
  dependency-level payload served from partially-surviving memos vs cold.

A second pass records the **serve** tier: query-after-mutation with the
level engine's incrementally-maintained depth fixpoints vs the same query
answered by recomputing the fixpoints from scratch over warm per-node
memos (the pre-engine serving cost).

Timings are appended to ``BENCH_scaling.json`` under the ``"churn"`` and
``"serve"`` keys (read-modify-write; the scaling benchmark owns the other
keys).
"""

import json
import pathlib
import statistics
import time

from repro.catalog.builder import CatalogBuilder
from repro.catalog.spec import CatalogSpec
from repro.core.actfort import ActFort
from repro.dynamic import DynamicAnalysisSession, MutationStream
from repro.dynamic.churn import measure_serve_comparison
from repro.model.factors import Platform
from repro.utils.tables import format_table

#: The indexed-engine-only scaling tier.
CHURN_SIZE = 1000

#: Length of the mutation stream.
MUTATION_COUNT = 500

#: Every k-th mutation is followed by a timed dependency-level query.
#: 1 = the live-monitoring serve workload: every mutation is immediately
#: queried, which is exactly the path the incremental depth fixpoints
#: exist for (PR 2 measured this at 25 when the query still paid the
#: ~100ms global fixpoint recompute per burst).
QUERY_EVERY = 1

#: Every k-th mutation, a from-scratch rebuild is sampled for comparison.
REBUILD_EVERY = 100

#: Acceptance floor: a mutation must beat a rebuild by this factor.
REQUIRED_UPDATE_SPEEDUP = 10.0

#: Serve-tier parameters: mutations sampled for the incremental-depths vs
#: fixpoint-recompute comparison, and its acceptance floor.  The hard
#: >=5x contract lives in ``tests/test_perf_smoke.py`` at the 402 tier;
#: this 1000-service tripwire only catches gross regressions.
SERVE_SAMPLES = 40
REQUIRED_SERVE_SPEEDUP = 3.0

JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_scaling.json"


def test_bench_churn_stream(benchmark):
    ecosystem = CatalogBuilder(
        CatalogSpec(total_services=CHURN_SIZE), seed=2021
    ).build_ecosystem()
    session = DynamicAnalysisSession(ecosystem)
    session.level_fractions(Platform.WEB)  # warm the maintained state
    stream = MutationStream(seed=2021)

    update_seconds = []
    query_seconds = []
    rebuild_seconds = []
    cold_query_seconds = []
    for index in range(MUTATION_COUNT):
        mutation = stream.next_mutation(session.ecosystem)
        start = time.perf_counter()
        session.mutate(mutation)
        update_seconds.append(time.perf_counter() - start)
        if (index + 1) % QUERY_EVERY == 0:
            start = time.perf_counter()
            session.level_fractions(Platform.WEB)
            query_seconds.append(time.perf_counter() - start)
        if (index + 1) % REBUILD_EVERY == 0:
            start = time.perf_counter()
            rebuilt = ActFort.from_ecosystem(session.ecosystem).tdg()
            rebuilt.attacker_index()
            rebuild_seconds.append(time.perf_counter() - start)
            start = time.perf_counter()
            rebuilt.level_fractions(Platform.WEB)
            cold_query_seconds.append(time.perf_counter() - start)

    # Give pytest-benchmark a representative single-step sample.
    benchmark.pedantic(
        lambda: session.mutate(stream.next_mutation(session.ecosystem)),
        rounds=5,
        iterations=1,
    )

    update_median = statistics.median(update_seconds)
    rebuild_mean = statistics.fmean(rebuild_seconds)
    query_median = statistics.median(query_seconds)
    cold_query_mean = statistics.fmean(cold_query_seconds)
    update_speedup = rebuild_mean / update_median
    serve_speedup = (rebuild_mean + cold_query_mean) / (
        update_median + query_median
    )
    rows = [
        ("mutations applied", str(MUTATION_COUNT)),
        ("final services", str(len(session))),
        ("update median", f"{update_median * 1e3:.2f}ms"),
        ("update total", f"{sum(update_seconds):.2f}s"),
        ("rebuild mean (sampled)", f"{rebuild_mean * 1e3:.1f}ms"),
        ("query after update (median)", f"{query_median * 1e3:.1f}ms"),
        ("query after rebuild (mean)", f"{cold_query_mean * 1e3:.1f}ms"),
        ("update vs rebuild", f"{update_speedup:.1f}x"),
        ("mutate+query vs rebuild+query", f"{serve_speedup:.1f}x"),
    ]
    print(
        "\n"
        + format_table(
            ("metric", "value"),
            rows,
            title=f"churn stream at the {CHURN_SIZE}-service tier",
        )
    )

    payload = {
        "size": CHURN_SIZE,
        "mutations": MUTATION_COUNT,
        "final_services": len(session),
        "update_median_seconds": update_median,
        "update_total_seconds": sum(update_seconds),
        "rebuild_mean_seconds": rebuild_mean,
        "query_after_update_median_seconds": query_median,
        "query_after_rebuild_mean_seconds": cold_query_mean,
        "update_speedup": update_speedup,
        "serve_speedup": serve_speedup,
    }
    merged = {}
    if JSON_PATH.exists():
        try:
            merged = json.loads(JSON_PATH.read_text())
        except ValueError:
            merged = {}
    merged["churn"] = payload
    JSON_PATH.write_text(json.dumps(merged, indent=2) + "\n")
    benchmark.extra_info["churn"] = payload

    assert update_speedup >= REQUIRED_UPDATE_SPEEDUP, payload


def test_bench_serve_tier():
    """Serve tier: incremental depth fixpoints vs scratch recompute.

    Every sampled mutation is followed by two timed dependency-level
    queries over the *same* graph state: one served by the level engine's
    delta-maintained fixpoints, one after dropping the engine so the
    fixpoints and classifications recompute from scratch (per-node memos
    stay warm -- exactly the pre-engine serving cost the ROADMAP's "next
    frontier" note measured at ~100ms for this tier).
    """
    ecosystem = CatalogBuilder(
        CatalogSpec(total_services=CHURN_SIZE), seed=2021
    ).build_ecosystem()
    # Twin-session methodology shared with the perf-smoke gate: one
    # session serves through the maintained level engine, the other
    # drops its engine before every query (the pre-engine serving path).
    incremental_seconds, recompute_seconds = measure_serve_comparison(
        ecosystem, samples=SERVE_SAMPLES, stream_seed=77
    )

    incremental_median = statistics.median(incremental_seconds)
    recompute_median = statistics.median(recompute_seconds)
    serve_speedup = recompute_median / incremental_median
    rows = [
        ("mutations sampled", str(SERVE_SAMPLES)),
        ("query with incremental depths (median)",
         f"{incremental_median * 1e3:.2f}ms"),
        ("query with fixpoint recompute (median)",
         f"{recompute_median * 1e3:.1f}ms"),
        ("incremental vs recompute", f"{serve_speedup:.1f}x"),
    ]
    print(
        "\n"
        + format_table(
            ("metric", "value"),
            rows,
            title=f"serve tier at {CHURN_SIZE} services",
        )
    )

    payload = {
        "size": CHURN_SIZE,
        "samples": SERVE_SAMPLES,
        "query_incremental_median_seconds": incremental_median,
        "query_fixpoint_recompute_median_seconds": recompute_median,
        "serve_speedup": serve_speedup,
    }
    merged = {}
    if JSON_PATH.exists():
        try:
            merged = json.loads(JSON_PATH.read_text())
        except ValueError:
            merged = {}
    merged["serve"] = payload
    JSON_PATH.write_text(json.dumps(merged, indent=2) + "\n")

    assert serve_speedup >= REQUIRED_SERVE_SPEEDUP, payload
