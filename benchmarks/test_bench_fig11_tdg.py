"""Fig. 11 / Fig. 12: the Transformation Dependency Graph over the paper's
named services, with per-node credential-factor and personal-info files.

Checks the specific relations the figure encodes: Ctrip is a full-capacity
parent of both Alipay (citizen ID) and China Railway; the email providers
parent Facebook's email reset; Google/Gmail feed linked-account logins.
"""

from repro.analysis.figures import render_fig11_tdg
from repro.catalog.seeds import seed_profiles
from repro.core import ActFort
from repro.model.ecosystem import Ecosystem


def test_bench_fig11_tdg(benchmark):
    ecosystem = Ecosystem(seed_profiles())

    def regenerate():
        analyzer = ActFort.from_ecosystem(ecosystem)
        tdg = analyzer.tdg()
        return tdg, render_fig11_tdg(tdg)

    tdg, rendering = benchmark(regenerate)
    print("\n" + rendering)
    benchmark.extra_info["nodes"] = len(tdg)

    # Fig. 11's edges, as the paper's Case III and measurement narrate them:
    assert "ctrip" in tdg.full_capacity_parents("alipay")
    assert "ctrip" in tdg.full_capacity_parents("china_railway")
    # Email providers unlock Facebook's email-code reset.
    facebook_parents = tdg.full_capacity_parents("facebook")
    assert {"gmail", "netease_mail", "outlook", "aliyun_mail"} & facebook_parents
    # Gmail is PayPal's full-capacity parent (Case II).
    assert "gmail" in tdg.full_capacity_parents("paypal")
    # Gmail/Google unlock Expedia via the binding relation (Section III-D).
    assert {"gmail", "google"} & tdg.full_capacity_parents("expedia")
    # Fringe nodes of the figure: Ctrip and the email providers are red.
    fringe = tdg.fringe_nodes()
    assert "ctrip" in fringe and "gmail" in fringe
    # Internal nodes: Alipay, PayPal and China Railway are blue.
    for internal in ("alipay", "paypal", "china_railway"):
        assert internal not in fringe
