"""Section VII: countermeasure ablation.

Re-measures the ecosystem under each proposed defense -- unified masking,
email hardening, web/mobile symmetry repair, built-in OS authentication --
and all combined, reporting the potential-victim-set size and the
direct/safe fractions per platform.
"""

from repro.core.tdg import DependencyLevel
from repro.defense.evaluation import DefenseEvaluation, outcome_rows
from repro.model.factors import Platform
from repro.utils.tables import format_table


def test_bench_countermeasures(benchmark, ecosystem):
    evaluation = DefenseEvaluation(ecosystem)

    def ablate():
        return evaluation.evaluate()

    outcomes = benchmark.pedantic(ablate, rounds=1, iterations=1)

    print(
        "\n"
        + format_table(
            ("defense", "PAV", "web direct", "web safe", "mobile direct", "mobile safe"),
            outcome_rows(outcomes),
            title="Section VII -- countermeasure ablation",
        )
    )
    by_label = {o.label: o for o in outcomes}
    benchmark.extra_info["pav"] = {
        label: outcome.pav_size for label, outcome in by_label.items()
    }

    baseline = by_label["baseline"]
    # Baseline: nearly everything is a potential victim.
    assert baseline.pav_fraction > 0.9
    # Every defense weakly shrinks the PAV; email hardening strictly.
    for label, outcome in by_label.items():
        assert outcome.pav_size <= baseline.pav_size, label
    assert by_label["email_hardening"].pav_size < baseline.pav_size
    # Unified masking strictly grows the safe set (kills combining chains).
    assert (
        by_label["unified_masking"].safe_fraction[Platform.WEB]
        > baseline.safe_fraction[Platform.WEB]
    )
    # Built-in authentication (the paper's end-state proposal) zeroes the
    # SMS attack surface entirely.
    assert by_label["builtin_auth"].pav_size == 0
    assert by_label["all_combined"].pav_size == 0
    for platform in (Platform.WEB, Platform.MOBILE):
        assert by_label["builtin_auth"].dependency[platform][
            DependencyLevel.SAFE
        ] == 1.0
