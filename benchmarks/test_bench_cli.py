"""Throughput of the pipe-composable CLI: records/sec through a real
3-stage pipeline.

Runs ``repro build | repro mutate | repro query --kind couples`` as
actual subprocess pipes (the same transport users script) at the paper
doubling tier (402 services) and the 1000-service tier, counts the
NDJSON records the pipeline delivers, and writes a ``cli_pipeline``
tier into ``BENCH_scaling.json``.

The measured figure is end-to-end: catalog build, profile encoding,
the downstream stages' event-sourced rebuild + mutation replay, the
watermark-paged couple stream, and the pipe transport itself.
``BENCH_QUICK=1`` (``make bench-quick``) keeps only the 402 tier.
"""

import json
import os
import pathlib
import subprocess
import sys
import time

import pytest

from repro.api.service import AnalysisService
from repro.catalog.builder import CatalogBuilder
from repro.catalog.spec import CatalogSpec
from repro.dynamic import MutationStream
from repro.utils.serialization import mutation_to_dict
from repro.utils.tables import format_table

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_scaling.json"

QUICK = bool(os.environ.get("BENCH_QUICK"))

#: (services, max couple records drawn through the pipe).
TIERS = ((402, 20_000),) + (() if QUICK else ((1000, 20_000),))

MUTATIONS_PER_TIER = 2


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


def _mutation_script(tmp_path, services):
    """A small feasible churn script for the tier's seed ecosystem."""
    service = AnalysisService(
        CatalogBuilder(
            CatalogSpec(total_services=services), seed=2021
        ).build_ecosystem()
    )
    stream = MutationStream(7)
    documents = []
    while len(documents) < MUTATIONS_PER_TIER:
        mutation = stream.next_mutation(service.ecosystem)
        service.apply(mutation)
        documents.append(mutation_to_dict(mutation))
    path = tmp_path / f"churn_{services}.ndjson"
    path.write_text(
        "".join(json.dumps(doc) + "\n" for doc in documents),
        encoding="utf-8",
    )
    return path


def _run_tier(tmp_path, services, max_records):
    script = _mutation_script(tmp_path, services)
    python = sys.executable
    command = (
        f"{python} -m repro build --services {services}"
        f" | {python} -m repro mutate --script {script}"
        f" | {python} -m repro query --kind couples"
        f" --page-size 512 --max-records {max_records}"
    )
    start = time.perf_counter()
    result = subprocess.run(
        ["bash", "-o", "pipefail", "-c", command],
        capture_output=True,
        text=True,
        env=_env(),
        cwd=str(REPO_ROOT),
        timeout=1200,
    )
    elapsed = time.perf_counter() - start
    assert result.returncode == 0, result.stderr
    records = result.stdout.count("\n")
    return {
        "services": services,
        "records": records,
        "seconds": round(elapsed, 3),
        "records_per_sec": round(records / elapsed, 1),
    }


@pytest.mark.benchmark
def test_cli_pipeline_throughput(tmp_path, capsys):
    tiers = [
        _run_tier(tmp_path, services, max_records)
        for services, max_records in TIERS
    ]
    payload = {"stages": 3, "query": "couples", "tiers": tiers}

    merged = {}
    if JSON_PATH.exists():
        try:
            merged = json.loads(JSON_PATH.read_text())
        except ValueError:
            merged = {}
    merged["cli_pipeline"] = payload
    JSON_PATH.write_text(json.dumps(merged, indent=2) + "\n")

    with capsys.disabled():
        table = format_table(
            ("services", "records", "seconds", "records/sec"),
            [
                (
                    tier["services"],
                    tier["records"],
                    f"{tier['seconds']:.3f}",
                    f"{tier['records_per_sec']:.1f}",
                )
                for tier in tiers
            ],
            title="\ncli_pipeline: build | mutate | query --kind couples",
        )
        sys.stderr.write(table + "\n")

    for tier in tiers:
        assert tier["records"] > 0
        assert tier["records_per_sec"] > 0
