"""Fig. 3: credential factors for sign-in vs password reset, per platform.

Regenerates the Fig. 3 aggregates -- the SMS-only sign-in vs reset split,
overall SMS dominance, and the general/info/unique path-type shares -- and
checks the paper's qualitative claims hold on the synthetic ecosystem.
"""

from repro.analysis.figures import fig3_rows
from repro.core.authproc import aggregate_path_statistics
from repro.model.factors import Platform
from repro.utils.tables import format_table


def test_bench_fig3_auth_factors(benchmark, actfort, measurement):
    reports = actfort.auth_reports

    def regenerate():
        return {
            platform: aggregate_path_statistics(reports, platform)
            for platform in (Platform.WEB, Platform.MOBILE)
        }

    stats = benchmark(regenerate)

    rows = fig3_rows(measurement)
    table = format_table(
        ("metric", "platform", "measured", "paper"),
        rows,
        title="Fig. 3 -- authentication-process measurement",
    )
    print("\n" + table)
    benchmark.extra_info["rows"] = [" | ".join(r) for r in rows]

    for platform in (Platform.WEB, Platform.MOBILE):
        s = stats[platform]
        # "The percentage of services using merely SMS codes for sign-in is
        # significantly lower than for password resetting."
        assert s["sms_only_signin"] < s["sms_only_reset"] - 0.15
        # "SMS Code takes up over 80% for the authentication."
        assert s["uses_sms_anywhere"] > 0.80
        # "Less than 20% of services demand extra information."
        assert s["extra_info_required"] < 0.20
        # General paths dominate; info and unique sit in the teens.
        assert s["general_share"] > s["info_share"]
        assert s["general_share"] > s["unique_share"]
        assert 0.04 < s["info_share"] < 0.30
        assert 0.05 < s["unique_share"] < 0.35
    # Platform asymmetry: the mobile general share is lower (45% vs 58.65%).
    assert (
        stats[Platform.MOBILE]["general_share"]
        < stats[Platform.WEB]["general_share"]
    )
