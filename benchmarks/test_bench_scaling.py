"""Scalability of the ActFort pipeline (supports the paper's future-work
note about automating measurement of larger ecosystems).

Sweeps the ecosystem size and times the dependency-level analysis (the
paper's Section IV-B payload) under **both** TDG engines:

- *old*: :class:`repro.core.reference.ReferenceTDG`, the seed's brute-force
  all-pairs scans, kept as the differential-testing oracle;
- *new*: the indexed :class:`repro.core.tdg.TransformationDependencyGraph`.

The old engine is swept up to the paper-doubling 402 tier; the indexed
engine additionally runs a 1000-service tier the seed could not touch
interactively.  Timings are printed as a table and written as
machine-readable JSON to ``BENCH_scaling.json`` at the repo root for the
``BENCH_*.json`` trajectory.
"""

import json
import pathlib
import time

from repro.catalog.builder import CatalogBuilder
from repro.catalog.spec import CatalogSpec
from repro.core.reference import ReferenceTDG
from repro.core.tdg import TransformationDependencyGraph
from repro.model.attacker import AttackerProfile
from repro.model.factors import Platform
from repro.utils.tables import format_table

#: Sizes both engines run; the seed's quadratic-to-cubic scans stay
#: tolerable up to the 402 doubling tier.
COMPARED_SIZES = (51, 101, 201, 402)

#: Indexed-engine-only tier (the reference needs minutes there).
NEW_ONLY_SIZES = (1000,)

#: The 402-tier acceptance floor for the refactor.
REQUIRED_SPEEDUP_402 = 3.0

JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_scaling.json"


def _build_nodes(size):
    spec = CatalogSpec(total_services=size)
    ecosystem = CatalogBuilder(spec, seed=2021).build_ecosystem()
    return tuple(
        TransformationDependencyGraph.node_from_profile(p) for p in ecosystem
    )


def _payload(graph):
    """The benchmarked analysis: Section IV-B dependency levels."""
    graph.level_fractions(Platform.WEB)


def _time_engine(engine_cls, nodes):
    graph = engine_cls(nodes, AttackerProfile.baseline())
    start = time.perf_counter()
    _payload(graph)
    return time.perf_counter() - start


def test_bench_actfort_scaling(benchmark):
    all_sizes = COMPARED_SIZES + NEW_ONLY_SIZES
    nodes_by_size = {size: _build_nodes(size) for size in all_sizes}

    benchmark.pedantic(
        lambda: _payload(
            TransformationDependencyGraph(
                nodes_by_size[201], AttackerProfile.baseline()
            )
        ),
        rounds=3,
        iterations=1,
    )

    old_seconds = {}
    new_seconds = {}
    for size in COMPARED_SIZES:
        old_seconds[size] = _time_engine(ReferenceTDG, nodes_by_size[size])
    for size in all_sizes:
        new_seconds[size] = _time_engine(
            TransformationDependencyGraph, nodes_by_size[size]
        )

    rows = []
    speedup = {}
    for size in all_sizes:
        old = old_seconds.get(size)
        new = new_seconds[size]
        if old is not None:
            speedup[size] = old / new if new > 0 else float("inf")
        rows.append(
            (
                size,
                f"{old:.3f}s" if old is not None else "-",
                f"{new:.3f}s",
                f"{speedup[size]:.1f}x" if size in speedup else "-",
            )
        )
    print(
        "\n"
        + format_table(
            ("services", "old (reference)", "new (indexed)", "speedup"),
            rows,
            title="TDG dependency-level analysis, old vs new engine",
        )
    )

    payload = {
        "payload": "dependency-level fractions (web), baseline attacker",
        "sizes": list(all_sizes),
        "old_seconds": {str(k): v for k, v in old_seconds.items()},
        "new_seconds": {str(k): v for k, v in new_seconds.items()},
        "speedup": {str(k): v for k, v in speedup.items()},
    }
    # Read-modify-write: other benchmarks (the churn tier) contribute
    # their own sections to the same trajectory file.
    merged = {}
    if JSON_PATH.exists():
        try:
            merged = json.loads(JSON_PATH.read_text())
        except ValueError:
            merged = {}
    merged.update(payload)
    JSON_PATH.write_text(json.dumps(merged, indent=2) + "\n")
    benchmark.extra_info["scaling"] = payload

    # Acceptance: the indexed engine is >= 3x the seed at the 402 tier, the
    # paper-scale analysis stays interactive, and the new 1000-service tier
    # completes in interactive time at all.
    assert speedup[402] >= REQUIRED_SPEEDUP_402, speedup
    assert new_seconds[201] < 30.0
    assert new_seconds[1000] < 30.0
