"""Scalability of the ActFort pipeline (supports the paper's future-work
note about automating measurement of larger ecosystems).

Sweeps the ecosystem size and reports the wall time of the full analysis
(stages 1-4 including dependency levels) per size; the benchmarked payload
is the paper-scale 201-service analysis.
"""

import time

from repro.catalog.builder import CatalogBuilder
from repro.catalog.spec import CatalogSpec
from repro.core import ActFort
from repro.model.factors import Platform
from repro.utils.tables import format_table


def _analyze(ecosystem) -> None:
    analyzer = ActFort.from_ecosystem(ecosystem)
    analyzer.tdg().level_fractions(Platform.WEB)
    analyzer.potential_victims()


def test_bench_actfort_scaling(benchmark):
    sizes = (51, 101, 201, 402)
    ecosystems = {}
    for size in sizes:
        spec = CatalogSpec(total_services=size)
        ecosystems[size] = CatalogBuilder(spec, seed=2021).build_ecosystem()

    benchmark.pedantic(
        lambda: _analyze(ecosystems[201]), rounds=3, iterations=1
    )

    rows = []
    timings = {}
    for size in sizes:
        start = time.perf_counter()
        _analyze(ecosystems[size])
        elapsed = time.perf_counter() - start
        timings[size] = elapsed
        rows.append((size, f"{elapsed:.2f}s"))
    print(
        "\n"
        + format_table(
            ("services", "full ActFort analysis"),
            rows,
            title="ActFort scaling (stages 1-4 + dependency levels)",
        )
    )
    benchmark.extra_info["timings"] = {str(k): v for k, v in timings.items()}

    # Paper-scale analysis completes in interactive time, and the growth
    # from 51 to 402 services stays well under cubic.
    assert timings[201] < 30.0
    assert timings[402] < 64.0 * timings[51] + 1.0
