"""Scalability of the ActFort pipeline (supports the paper's future-work
note about automating measurement of larger ecosystems).

Sweeps the ecosystem size and times the dependency-level analysis (the
paper's Section IV-B payload) under **both** TDG engines:

- *old*: :class:`repro.core.reference.ReferenceTDG`, the seed's brute-force
  all-pairs scans, kept as the differential-testing oracle;
- *new*: the indexed :class:`repro.core.tdg.TransformationDependencyGraph`.

The old engine is swept up to the paper-doubling 402 tier; the indexed
engine additionally runs a 1000-service tier the seed could not touch
interactively.  Timings are printed as a table and written as
machine-readable JSON to ``BENCH_scaling.json`` at the repo root for the
``BENCH_*.json`` trajectory.
"""

import json
import multiprocessing
import os
import pathlib
import statistics
import time

import pytest

from repro.api import (
    AnalysisService,
    ClosureQuery,
    CoupleFileQuery,
    DependencyLevelsQuery,
    EdgeSummaryQuery,
    LevelReportQuery,
    MeasurementQuery,
    WeakEdgeQuery,
)
from repro.catalog.builder import CatalogBuilder
from repro.catalog.spec import CatalogSpec
from repro.core.reference import ReferenceTDG
from repro.core.tdg import TransformationDependencyGraph
from repro.dynamic import MutationStream
from repro.model.attacker import AttackerProfile
from repro.model.factors import Platform
from repro.utils.tables import format_table

#: Sizes both engines run; the seed's quadratic-to-cubic scans stay
#: tolerable up to the 402 doubling tier.
COMPARED_SIZES = (51, 101, 201, 402)

#: Indexed-engine-only tier (the reference needs minutes there).
NEW_ONLY_SIZES = (1000,)

#: The 402-tier acceptance floor for the refactor.
REQUIRED_SPEEDUP_402 = 3.0

JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_scaling.json"

#: ``make bench-quick``: only the paper-tier (<=402) engine comparison
#: runs; the 1000-service serving tiers and the big tiers are skipped.
QUICK = bool(os.environ.get("BENCH_QUICK"))

#: ``BENCH_FULL=1`` additionally runs the 30k big tier (minutes of
#: single-core fixpoint work; the 10k tier always runs outside quick
#: mode).
FULL = bool(os.environ.get("BENCH_FULL"))


def _build_nodes(size):
    spec = CatalogSpec(total_services=size)
    ecosystem = CatalogBuilder(spec, seed=2021).build_ecosystem()
    return tuple(
        TransformationDependencyGraph.node_from_profile(p) for p in ecosystem
    )


def _payload(graph):
    """The benchmarked analysis: Section IV-B dependency levels."""
    graph.level_fractions(Platform.WEB)


def _time_engine(engine_cls, nodes):
    graph = engine_cls(nodes, AttackerProfile.baseline())
    start = time.perf_counter()
    _payload(graph)
    return time.perf_counter() - start


def test_bench_actfort_scaling(benchmark):
    all_sizes = COMPARED_SIZES + (() if QUICK else NEW_ONLY_SIZES)
    nodes_by_size = {size: _build_nodes(size) for size in all_sizes}

    benchmark.pedantic(
        lambda: _payload(
            TransformationDependencyGraph(
                nodes_by_size[201], AttackerProfile.baseline()
            )
        ),
        rounds=3,
        iterations=1,
    )

    old_seconds = {}
    new_seconds = {}
    for size in COMPARED_SIZES:
        old_seconds[size] = _time_engine(ReferenceTDG, nodes_by_size[size])
    for size in all_sizes:
        new_seconds[size] = _time_engine(
            TransformationDependencyGraph, nodes_by_size[size]
        )

    rows = []
    speedup = {}
    for size in all_sizes:
        old = old_seconds.get(size)
        new = new_seconds[size]
        if old is not None:
            speedup[size] = old / new if new > 0 else float("inf")
        rows.append(
            (
                size,
                f"{old:.3f}s" if old is not None else "-",
                f"{new:.3f}s",
                f"{speedup[size]:.1f}x" if size in speedup else "-",
            )
        )
    print(
        "\n"
        + format_table(
            ("services", "old (reference)", "new (indexed)", "speedup"),
            rows,
            title="TDG dependency-level analysis, old vs new engine",
        )
    )

    payload = {
        "payload": "dependency-level fractions (web), baseline attacker",
        "sizes": list(all_sizes),
        "old_seconds": {str(k): v for k, v in old_seconds.items()},
        "new_seconds": {str(k): v for k, v in new_seconds.items()},
        "speedup": {str(k): v for k, v in speedup.items()},
    }
    # Read-modify-write: other benchmarks (the churn tier) contribute
    # their own sections to the same trajectory file.  Quick mode is a
    # smoke run, not the trajectory -- it must not overwrite the full
    # sweep's sections with a truncated size list.
    if not QUICK:
        merged = {}
        if JSON_PATH.exists():
            try:
                merged = json.loads(JSON_PATH.read_text())
            except ValueError:
                merged = {}
        merged.update(payload)
        JSON_PATH.write_text(json.dumps(merged, indent=2) + "\n")
    benchmark.extra_info["scaling"] = payload

    # Acceptance: the indexed engine is >= 3x the seed at the 402 tier, the
    # paper-scale analysis stays interactive, and the new 1000-service tier
    # completes in interactive time at all.
    assert speedup[402] >= REQUIRED_SPEEDUP_402, speedup
    assert new_seconds[201] < 30.0
    if not QUICK:
        assert new_seconds[1000] < 30.0


# ----------------------------------------------------------------------
# api_serve tier: the AnalysisService facade as a serving layer
# ----------------------------------------------------------------------

#: The serving tier size (matches the churn/serve tiers).
API_SERVE_SIZE = 1000

#: Warm repetitions of the workload (the steady serving state).
WARM_ROUNDS = 5

#: Mutation/re-query cycles measured after the warm phase.
MUTATION_CYCLES = 5

#: Acceptance floor: a warm repeated batch must be served from the
#: version-keyed result cache (the hard >=10x contract lives in
#: ``tests/test_perf_smoke.py`` at the 402 tier).
REQUIRED_WARM_SPEEDUP = 10.0

#: Re-serving after a mutation must stay segment-splice work (tens of
#: ms measured; this generous ceiling only fires when the incremental
#: stream/measurement serving degrades back to re-enumeration).
MAX_REQUERY_SECONDS = 1.0


def _instrumentation_summary(service):
    """The serving tier's observability digest for ``BENCH_scaling.json``.

    Everything reads off the service's one
    :class:`~repro.obs.Instrumentation` registry: cache efficacy of
    every engine cache, and bucket-resolution quantiles of the
    invalidation-cone histogram (how many services each mutation's
    delta actually reached)."""
    registry = service.instrumentation.registry
    label = service.primary_attacker
    by = {"attacker": label}
    stats = service.cache_stats()
    cone_quantiles = {}
    cone_family = registry.get("repro_invalidation_cone_services")
    if cone_family is not None:
        for labels, child in cone_family.samples():
            if labels.get("attacker") == label and child.count:
                cone_quantiles = {
                    "count": child.count,
                    "mean": child.sum / child.count,
                    "p50_le": child.quantile(0.5),
                    "p90_le": child.quantile(0.9),
                    "p100_le": child.quantile(1.0),
                }
    return {
        "result_cache": {
            "hits": stats.hits,
            "misses": stats.misses,
            "hit_rate": stats.hit_rate,
        },
        "closure_cache": dict(service.closure_cache_stats()),
        "stream_segments": {
            "computed": int(
                registry.value("repro_stream_segments_computed_total", by)
            ),
            "reused": int(
                registry.value("repro_stream_segments_reused_total", by)
            ),
            "invalidated": int(
                registry.value("repro_stream_segments_invalidated_total", by)
            ),
        },
        "parents": {
            "derivations": int(
                registry.value("repro_parents_derivations_total", by)
            ),
            "retractions": int(
                registry.value("repro_parents_retractions_total", by)
            ),
        },
        "levels_flushes": int(
            registry.value("repro_levels_flushes_total", by)
        ),
        "invalidation_cone_services": cone_quantiles,
    }


def _api_workload():
    """A mixed serving workload: levels (both shapes), full measurement,
    forward closure, edge counts, and one page of each record stream.

    Stream pages are modest: a weak-edge page needs *distinct* edges, and
    every additional service it touches buys that service's residual-
    signature enumeration -- the first page is the honest cold cost of
    the couple machinery at this tier, not an output-bound full scan."""
    return (
        LevelReportQuery(),
        DependencyLevelsQuery(platform=Platform.WEB),
        MeasurementQuery(),
        ClosureQuery(),
        EdgeSummaryQuery(),
        CoupleFileQuery(page_size=128),
        WeakEdgeQuery(page_size=128),
    )


@pytest.mark.skipif(QUICK, reason="BENCH_QUICK runs the 402 tier only")
def test_bench_api_serve(benchmark):
    ecosystem = CatalogBuilder(
        CatalogSpec(total_services=API_SERVE_SIZE), seed=2021
    ).build_ecosystem()
    service = AnalysisService(ecosystem)
    workload = _api_workload()

    start = time.perf_counter()
    cold_results = service.execute_batch(workload)
    cold = time.perf_counter() - start

    warm_seconds = []
    for _ in range(WARM_ROUNDS):
        start = time.perf_counter()
        warm_results = service.execute_batch(workload)
        warm_seconds.append(time.perf_counter() - start)
    assert warm_results == cold_results
    warm = statistics.median(warm_seconds)

    # The post-mutation re-serve: every cycle routes one mutation through
    # the incremental engines (new version -> cache keys miss) and re-runs
    # the whole batch against warm engine state.
    stream = MutationStream(seed=2021)
    mutate_seconds = []
    requery_seconds = []
    for _ in range(MUTATION_CYCLES):
        mutation = stream.next_mutation(service.ecosystem)
        start = time.perf_counter()
        service.apply(mutation)
        mutate_seconds.append(time.perf_counter() - start)
        start = time.perf_counter()
        service.execute_batch(workload)
        requery_seconds.append(time.perf_counter() - start)

    benchmark.pedantic(
        lambda: service.execute_batch(workload), rounds=3, iterations=1
    )

    warm_speedup = cold / warm if warm else float("inf")
    requery_median = statistics.median(requery_seconds)
    stats = service.cache_stats()
    rows = [
        ("services", str(API_SERVE_SIZE)),
        ("queries per batch", str(len(workload))),
        ("cold batch", f"{cold * 1e3:.1f}ms"),
        ("warm batch (median)", f"{warm * 1e6:.0f}us"),
        ("cold vs warm", f"{warm_speedup:.0f}x"),
        ("mutation absorb (median)",
         f"{statistics.median(mutate_seconds) * 1e3:.2f}ms"),
        ("re-serve after mutation (median)",
         f"{requery_median * 1e3:.1f}ms"),
        ("cache hit rate", f"{100 * stats.hit_rate:.0f}%"),
    ]
    print(
        "\n"
        + format_table(
            ("metric", "value"),
            rows,
            title=f"api_serve tier at {API_SERVE_SIZE} services",
        )
    )

    payload = {
        "size": API_SERVE_SIZE,
        "queries_per_batch": len(workload),
        "cold_batch_seconds": cold,
        "warm_batch_median_seconds": warm,
        "warm_speedup": warm_speedup,
        "mutation_median_seconds": statistics.median(mutate_seconds),
        "requery_after_mutation_median_seconds": requery_median,
        "cache_hits": stats.hits,
        "cache_misses": stats.misses,
        "instrumentation": _instrumentation_summary(service),
    }
    merged = {}
    if JSON_PATH.exists():
        try:
            merged = json.loads(JSON_PATH.read_text())
        except ValueError:
            merged = {}
    merged["api_serve"] = payload
    JSON_PATH.write_text(json.dumps(merged, indent=2) + "\n")
    benchmark.extra_info["api_serve"] = payload

    assert warm_speedup >= REQUIRED_WARM_SPEEDUP, payload
    # The incremental serve path's acceptance at this tier: re-serving
    # the mixed batch after a mutation is spliced-segment work (tens of
    # ms), never a from-scratch re-enumeration (seconds).
    assert requery_median < MAX_REQUERY_SECONDS, payload


# ----------------------------------------------------------------------
# closure_churn tier: ClosureQuery re-serves under support-reaching churn
# ----------------------------------------------------------------------

#: The closure-churn tier size (matches the api_serve tier).
CLOSURE_CHURN_SIZE = 1000

#: Support-reaching mutations measured (non-reaching churn is served by
#: the survive/patch path and measured implicitly by ``api_serve``).
REACHING_CYCLES = 6

#: Ceiling on mutations streamed while hunting reaching ones.
MAX_STREAMED_MUTATIONS = 80


@pytest.mark.skipif(QUICK, reason="BENCH_QUICK runs the 402 tier only")
def test_bench_closure_churn(benchmark):
    """Re-serving ``ClosureQuery`` after mutations that *reach* the cached
    closure's compromised support set.

    Each reaching mutation marks the graph-level support record dirty;
    the re-serve resumes the PAV fixpoint from the recorded per-round
    postings (reused rounds + re-tested touched services).  The
    comparator drops the closure cache and re-runs the scratch fixpoint
    over the same mutated graph, which is exactly what every reaching
    delta cost before the incremental engine."""
    ecosystem = CatalogBuilder(
        CatalogSpec(total_services=CLOSURE_CHURN_SIZE), seed=2021
    ).build_ecosystem()
    service = AnalysisService(ecosystem)
    query = ClosureQuery()
    service.execute_batch([query])  # prime the support record
    graph = service.session.graph(service.primary_attacker)

    resume_seconds = []
    scratch_seconds = []
    streamed = 0
    stream = MutationStream(seed=2021)
    while (
        len(resume_seconds) < REACHING_CYCLES
        and streamed < MAX_STREAMED_MUTATIONS
    ):
        mutation = stream.next_mutation(service.ecosystem)
        marked = graph.closure_cache_stats()["revalidations"]
        service.apply(mutation)
        streamed += 1
        if graph.closure_cache_stats()["revalidations"] == marked:
            service.execute_batch([query])  # keep the record warm
            continue
        start = time.perf_counter()
        service.execute_batch([query])
        resume_seconds.append(time.perf_counter() - start)
        graph.reset_closure_cache()
        start = time.perf_counter()
        graph_closure = service.session.forward_closure()
        scratch_seconds.append(time.perf_counter() - start)
        assert graph_closure is not None

    benchmark.pedantic(
        lambda: service.execute_batch([query]), rounds=3, iterations=1
    )

    assert len(resume_seconds) >= 3, (
        f"only {len(resume_seconds)} reaching mutations in "
        f"{streamed} streamed"
    )
    resume = statistics.median(resume_seconds)
    scratch = statistics.median(scratch_seconds)
    speedup = scratch / resume if resume else float("inf")
    stats = graph.closure_cache_stats()
    rows = [
        ("services", str(CLOSURE_CHURN_SIZE)),
        ("reaching mutations", str(len(resume_seconds))),
        ("mutations streamed", str(streamed)),
        ("re-serve, resumed fixpoint (median)", f"{resume * 1e3:.2f}ms"),
        ("scratch fixpoint (median)", f"{scratch * 1e3:.2f}ms"),
        ("resume vs scratch", f"{speedup:.1f}x"),
        ("closure resumes", str(stats["resumes"])),
        ("closure computes", str(stats["computes"])),
    ]
    print(
        "\n"
        + format_table(
            ("metric", "value"),
            rows,
            title=f"closure_churn tier at {CLOSURE_CHURN_SIZE} services",
        )
    )

    payload = {
        "size": CLOSURE_CHURN_SIZE,
        "reaching_mutations": len(resume_seconds),
        "mutations_streamed": streamed,
        "reserve_resumed_median_seconds": resume,
        "scratch_fixpoint_median_seconds": scratch,
        "resume_speedup": speedup,
        "closure_resumes": stats["resumes"],
        "closure_computes": stats["computes"],
        "instrumentation": _instrumentation_summary(service),
    }
    merged = {}
    if JSON_PATH.exists():
        try:
            merged = json.loads(JSON_PATH.read_text())
        except ValueError:
            merged = {}
    merged["closure_churn"] = payload
    JSON_PATH.write_text(json.dumps(merged, indent=2) + "\n")
    benchmark.extra_info["closure_churn"] = payload

    # Acceptance at this tier mirrors the 402 smoke gate: resuming from
    # the support postings must beat the scratch fixpoint decisively.
    assert speedup >= 3.0, payload


# ----------------------------------------------------------------------
# big_tiers: 10k/30k cold build, churn, re-serve, and peak RSS
# ----------------------------------------------------------------------

#: Sizes the id-compacted core targets.  The 30k tier is minutes of
#: single-core fixpoint work, so it only runs under ``BENCH_FULL=1``.
BIG_TIERS = (10_000,) + ((30_000,) if FULL else ())

#: Mutation/re-serve cycles measured per big tier.
BIG_TIER_CYCLES = 5


def _run_big_tier(size, conn):
    """One big tier, measured inside a forked child so its peak RSS is
    the tier's own high-water mark (``ru_maxrss`` is monotone per
    process -- measuring tiers in one process would report the largest
    tier's footprint for every tier)."""
    import resource

    from repro.dynamic import MutationStream
    from repro.dynamic.parallel import resolve_workers

    ecosystem = CatalogBuilder(
        CatalogSpec(total_services=size), seed=2021
    ).build_ecosystem()

    start = time.perf_counter()
    service = AnalysisService(ecosystem, build_workers=-1)
    cold_build = time.perf_counter() - start

    # Levels + measurement: the Section IV payload.  The edge streams
    # stay out -- a 10k weak-edge enumeration is output-bound (millions
    # of couples), which would swamp what this tier measures.
    workload = (LevelReportQuery(), MeasurementQuery())
    start = time.perf_counter()
    service.execute_batch(workload)
    first_serve = time.perf_counter() - start

    stream = MutationStream(seed=2021)
    mutate_seconds = []
    requery_seconds = []
    for _ in range(BIG_TIER_CYCLES):
        mutation = stream.next_mutation(service.ecosystem)
        start = time.perf_counter()
        service.apply(mutation)
        mutate_seconds.append(time.perf_counter() - start)
        start = time.perf_counter()
        service.execute_batch(workload)
        requery_seconds.append(time.perf_counter() - start)

    interners = service.session.interner_stats()
    conn.send(
        {
            "size": size,
            "build_workers": resolve_workers(-1),
            "cold_build_seconds": cold_build,
            "first_serve_seconds": first_serve,
            "mutation_median_seconds": statistics.median(mutate_seconds),
            "reserve_median_seconds": statistics.median(requery_seconds),
            "peak_rss_kb": resource.getrusage(
                resource.RUSAGE_SELF
            ).ru_maxrss,
            "service_ids_high_water": interners["services"]["high_water"],
        }
    )
    conn.close()


@pytest.mark.skipif(QUICK, reason="BENCH_QUICK runs the 402 tier only")
def test_bench_big_tiers(benchmark):
    context = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    )
    tiers = []
    for size in BIG_TIERS:
        parent_conn, child_conn = context.Pipe(duplex=False)
        child = context.Process(
            target=_run_big_tier, args=(size, child_conn)
        )
        child.start()
        child_conn.close()
        result = parent_conn.recv()
        child.join()
        assert child.exitcode == 0
        tiers.append(result)

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = [
        (
            tier["size"],
            f"{tier['cold_build_seconds']:.2f}s",
            f"{tier['first_serve_seconds']:.2f}s",
            f"{tier['mutation_median_seconds'] * 1e3:.2f}ms",
            f"{tier['reserve_median_seconds'] * 1e3:.1f}ms",
            f"{tier['peak_rss_kb'] / 1024:.0f}MB",
        )
        for tier in tiers
    ]
    print(
        "\n"
        + format_table(
            (
                "services",
                "cold build",
                "first serve",
                "mutation (median)",
                "re-serve (median)",
                "peak RSS",
            ),
            rows,
            title="big tiers: id-compacted core",
        )
    )

    merged = {}
    if JSON_PATH.exists():
        try:
            merged = json.loads(JSON_PATH.read_text())
        except ValueError:
            merged = {}
    existing = {
        str(tier["size"]): tier
        for tier in merged.get("big_tiers", {}).values()
    } if isinstance(merged.get("big_tiers"), dict) else {}
    existing.update({str(tier["size"]): tier for tier in tiers})
    merged["big_tiers"] = existing
    JSON_PATH.write_text(json.dumps(merged, indent=2) + "\n")
    benchmark.extra_info["big_tiers"] = existing

    # Acceptance: the 10k tier stays a live serving system -- cold build
    # in interactive time, churn absorbed in sub-second splices, and the
    # post-mutation re-serve never re-running the cold fixpoint.
    ten_k = next(tier for tier in tiers if tier["size"] == 10_000)
    assert ten_k["cold_build_seconds"] < 60.0, ten_k
    assert ten_k["mutation_median_seconds"] < 1.0, ten_k
    assert ten_k["reserve_median_seconds"] < ten_k["first_serve_seconds"], ten_k
