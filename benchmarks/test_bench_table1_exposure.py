"""Table I: private information obtained from accounts after log-in.

Regenerates the per-kind exposure percentages for web and mobile and
compares each cell against the paper's published value.
"""

from repro.analysis.figures import table1_rows
from repro.catalog.spec import TABLE1_MOBILE, TABLE1_WEB
from repro.core.collection import exposure_table
from repro.model.factors import Platform
from repro.utils.tables import format_table


def test_bench_table1_exposure(benchmark, actfort, measurement):
    reports = actfort.collection_reports

    def regenerate():
        return {
            platform: exposure_table(reports, platform)
            for platform in (Platform.WEB, Platform.MOBILE)
        }

    tables = benchmark(regenerate)

    rows = table1_rows(measurement)
    print(
        "\n"
        + format_table(
            ("kind", "web %", "paper", "mobile %", "paper"),
            rows,
            title="Table I -- exposed personal information after log-in",
        )
    )
    benchmark.extra_info["rows"] = [" | ".join(r) for r in rows]

    for platform, paper in ((Platform.WEB, TABLE1_WEB), (Platform.MOBILE, TABLE1_MOBILE)):
        for kind, expected in paper.items():
            measured = tables[platform][kind]
            assert abs(measured - expected) < 0.10, (platform, kind, measured)

    # Headline shape: mobile apps leak more than websites for most kinds,
    # and the top-three kinds match the paper's ranking candidates.
    mobile_higher = sum(
        1
        for kind in TABLE1_WEB
        if tables[Platform.MOBILE][kind] > tables[Platform.WEB][kind]
    )
    assert mobile_higher >= 7
