"""The multi-tenant HTTP tier end to end: what a network client pays.

Everything the other serving benchmarks measure in-process rides real
HTTP here -- stdlib server, JSON codecs, admission, shard inbox -- at
the paper-doubling 402 tier and the 1000-service tier (the latter
skipped under ``BENCH_QUICK``).  Four numbers per tier land in
``BENCH_scaling.json`` under ``serve_http``:

- **cold build**: ``POST /sessions`` with a catalog size -- the full
  catalog + stage-1/2 + graph build inside the request;
- **warm start**: ``POST /sessions`` with the donor's snapshot document
  -- the migration path's cold-start replacement.  Its speedup over the
  cold build is the serving tier's reason to exist (the tier-1 gate
  ``test_snapshot_warm_start_beats_cold_build_5x_at_402`` enforces the
  in-process floor);
- **warm query p50/p99**: repeated single-query requests against a
  cached result -- the steady-state read latency including HTTP;
- **mutations/sec**: serialized ``POST /mutations`` receipts through
  one shard's single-writer loop.
"""

from __future__ import annotations

import json
import os
import pathlib
import statistics
import time
import urllib.request

from repro.serve import AnalysisServer, ServeConfig

JSON_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_scaling.json"
)

QUICK = bool(os.environ.get("BENCH_QUICK"))

#: HTTP tiers; 1000 is skipped under ``BENCH_QUICK``.
SIZES = (402, 1000)

WARM_QUERY_SAMPLES = 40
MUTATION_SAMPLES = 24


def _post(url: str, body=None, timeout: float = 300.0):
    data = json.dumps(body or {}).encode("utf-8")
    request = urllib.request.Request(
        url,
        data=data,
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def _get(url: str, timeout: float = 300.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def _percentile(samples, fraction: float) -> float:
    ordered = sorted(samples)
    index = min(
        len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1)))
    )
    return ordered[index]


def _bench_tier(url: str, size: int) -> dict:
    base = f"{url}/v1/bench{size}"
    batch = {
        "queries": [
            {"kind": "level_report"},
            {"kind": "measurement"},
            {"kind": "closure"},
            {"kind": "edge_summary"},
        ]
    }

    # Both start paths are timed to *first batch served*: a bare create
    # is cheap on both sides (engines materialize lazily), so the fair
    # comparison is how long until the standard batch is in hand --
    # computed through the engines on the cold path, carried as warm
    # results on the snapshot path.
    start = time.perf_counter()
    status, created = _post(
        f"{base}/sessions", {"name": "cold", "services": size}
    )
    assert status == 201 and created["services"] == size
    session = f"{base}/sessions/cold"
    status, cold_batch = _post(f"{session}/batch", batch)
    cold_build = time.perf_counter() - start
    assert status == 200

    status, document = _get(f"{session}/snapshot")
    assert status == 200
    snapshot_bytes = len(json.dumps(document).encode("utf-8"))
    warm_results_carried = len(document.get("warm_results", ()))

    start = time.perf_counter()
    status, restored = _post(
        f"{base}/sessions", {"name": "warm", "snapshot": document}
    )
    assert status == 201 and restored["warm_start"] is True
    status, warm_batch = _post(f"{base}/sessions/warm/batch", batch)
    warm_start = time.perf_counter() - start
    assert status == 200
    assert warm_batch == cold_batch

    query_seconds = []
    for _ in range(WARM_QUERY_SAMPLES):
        start = time.perf_counter()
        status, _ = _post(
            f"{base}/sessions/warm/query", {"kind": "measurement"}
        )
        query_seconds.append(time.perf_counter() - start)
        assert status == 200

    service_names = sorted(
        entry["service"] for entry in document["auth_reports"]
    )
    mutation_documents = [
        {
            "kind": "change_masking",
            "service": name,
            "platform": "web",
            "info_kind": "email_address",
            "spec": {"reveal_prefix": 1 + (index % 2)},
        }
        for index, name in enumerate(
            service_names[:MUTATION_SAMPLES]
        )
    ]
    start = time.perf_counter()
    for mutation_document in mutation_documents:
        status, receipt = _post(
            f"{base}/sessions/warm/mutations", mutation_document
        )
        assert status == 200, receipt
    mutation_elapsed = time.perf_counter() - start

    return {
        "size": size,
        "cold_build_seconds": cold_build,
        "warm_start_seconds": warm_start,
        "warm_start_speedup": cold_build / warm_start,
        "snapshot_bytes": snapshot_bytes,
        "warm_results_carried": warm_results_carried,
        "query_samples": WARM_QUERY_SAMPLES,
        "query_p50_seconds": statistics.median(query_seconds),
        "query_p99_seconds": _percentile(query_seconds, 0.99),
        "mutation_samples": MUTATION_SAMPLES,
        "mutations_per_second": MUTATION_SAMPLES / mutation_elapsed,
    }


def test_bench_serve_http(benchmark):
    sizes = tuple(
        size for size in SIZES if not (QUICK and size > 402)
    )
    tiers = {}
    with AnalysisServer(config=ServeConfig()) as tier:
        for size in sizes:
            tiers[str(size)] = _bench_tier(tier.url, size)
        warm_session = f"{tier.url}/v1/bench{sizes[0]}/sessions/warm"
        benchmark.pedantic(
            lambda: _post(
                f"{warm_session}/query", {"kind": "measurement"}
            ),
            rounds=5,
            iterations=1,
        )

    for size, payload in tiers.items():
        print(
            f"\nserve_http tier at {size} services: "
            f"cold build {payload['cold_build_seconds'] * 1e3:.0f}ms, "
            f"snapshot warm-start {payload['warm_start_seconds'] * 1e3:.0f}ms "
            f"({payload['warm_start_speedup']:.0f}x), "
            f"query p50 {payload['query_p50_seconds'] * 1e3:.2f}ms / "
            f"p99 {payload['query_p99_seconds'] * 1e3:.2f}ms, "
            f"{payload['mutations_per_second']:.0f} mutations/s"
        )

    merged = {}
    if JSON_PATH.exists():
        try:
            merged = json.loads(JSON_PATH.read_text())
        except ValueError:
            merged = {}
    merged["serve_http"] = {"tiers": tiers}
    JSON_PATH.write_text(json.dumps(merged, indent=2) + "\n")
    benchmark.extra_info["serve_http"] = tiers

    # The migration path must stay a win even with the snapshot upload
    # on the wire; the strict >=5x in-process floor is tier-1's gate
    # (test_snapshot_warm_start_beats_cold_build_5x_at_402), so this
    # only trips if warm-start stops beating a cold build at all.
    for payload in tiers.values():
        assert payload["warm_start_speedup"] >= 1.2, payload
