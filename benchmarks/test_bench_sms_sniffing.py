"""Fig. 5/6 + Section V-A-2: passive GSM sniffing.

The paper's rig monitors frequency points with 16 C118 phones.  The
benchmark sweeps the number of monitors and measures the OTP interception
rate on an A5/1 cell (cracking succeeds ~90% of the time, as the published
attacks report), reproducing the operational shape: more monitors -> more
captured codes, with the full 16-monitor rig near the crack ceiling.
"""

from repro.model.identity import IdentityGenerator
from repro.telecom.cipher import CipherSuite, CrackModel
from repro.telecom.network import GSMNetwork, RadioTech
from repro.telecom.sniffer import OsmocomSniffer
from repro.utils.clock import Clock
from repro.utils.rng import SeedSequence
from repro.utils.tables import format_table

_ARFCNS = tuple(range(512, 528))  # a 16-frequency cell
_SENDS = 60


def _interception_rate(monitors: int, seed: int = 11) -> dict:
    seeds = SeedSequence(seed)
    clock = Clock()
    network = GSMNetwork(clock=clock, seeds=seeds)
    network.add_cell("cell", arfcns=_ARFCNS, cipher=CipherSuite.A5_1)
    victim = IdentityGenerator(seed).generate()
    network.provision_phone(
        victim.cellphone_number, "cell", preferred_tech=RadioTech.GSM
    )
    sniffer = OsmocomSniffer(
        network,
        "cell",
        monitors=monitors,
        crack_model=CrackModel(
            success_probability=0.9,
            crack_seconds=30.0,
            rng=seeds.stream("crack"),
        ),
    )
    sniffer.start()
    for index in range(_SENDS):
        clock.advance(61.0)
        network.deliver_sms(
            victim.cellphone_number,
            f"your code is {100000 + index}",
            sender="svc",
        )
    stats = sniffer.stats
    stats["rate"] = stats["captured"] / _SENDS
    return stats


def test_bench_sms_sniffing_sweep(benchmark):
    def full_rig():
        return _interception_rate(monitors=16)

    full = benchmark(full_rig)

    rows = []
    rates = {}
    for monitors in (1, 2, 4, 8, 16):
        stats = _interception_rate(monitors)
        rates[monitors] = stats["rate"]
        rows.append(
            (
                monitors,
                f"{100 * stats['rate']:.1f}%",
                stats["missed_dark_arfcn"],
                stats["missed_crack_failure"],
            )
        )
    print(
        "\n"
        + format_table(
            ("C118 monitors", "interception rate", "dark-ARFCN misses", "crack failures"),
            rows,
            title="Passive sniffing: interception rate vs rig size (A5/1 cell)",
        )
    )
    benchmark.extra_info["rates"] = {str(k): v for k, v in rates.items()}

    # Shape: monotone-ish growth, full rig near the 90% crack ceiling,
    # a single monitor misses most of a 16-ARFCN cell.
    assert rates[1] < 0.25
    assert rates[16] > 0.75
    assert rates[16] > rates[4] > rates[1]
    assert full["missed_dark_arfcn"] == 0  # 16 monitors cover all 16 ARFCNs


def test_bench_sniffing_a50_vs_a51(benchmark):
    """Unencrypted cells ("many GSM networks have no data encryption")
    yield every burst instantly; A5/1 costs the crack failures + delay."""

    def run_a50():
        seeds = SeedSequence(3)
        clock = Clock()
        network = GSMNetwork(clock=clock, seeds=seeds)
        network.add_cell("cell", arfcns=_ARFCNS, cipher=CipherSuite.A5_0)
        victim = IdentityGenerator(3).generate()
        network.provision_phone(
            victim.cellphone_number, "cell", preferred_tech=RadioTech.GSM
        )
        sniffer = OsmocomSniffer(network, "cell", monitors=16)
        sniffer.start()
        for index in range(_SENDS):
            clock.advance(61.0)
            network.deliver_sms(
                victim.cellphone_number,
                f"your code is {200000 + index}",
                sender="svc",
            )
        return sniffer.stats["captured"] / _SENDS

    a50_rate = benchmark(run_a50)
    a51_rate = _interception_rate(16)["rate"]
    print(
        f"\nA5/0 interception rate: {100 * a50_rate:.1f}% | "
        f"A5/1: {100 * a51_rate:.1f}%"
    )
    assert a50_rate == 1.0
    assert a51_rate < a50_rate
