"""Section IV-B: the dependency-level percentages, plus a couples ablation.

Regenerates the paper's five-way classification (directly compromisable /
one middle layer / two layers all-full / two layers with half-capacity
couples / safe) for both platforms, and ablates the Definition-3 couple
mechanism by unifying masking (which removes every combining couple) to
show how much of the attack surface exists only through joint coverage.
"""

from repro.analysis.figures import PAPER_DEPENDENCY, dependency_level_rows
from repro.core import ActFort
from repro.core.tdg import DependencyLevel
from repro.defense.masking_policy import UnifiedMaskingPolicy
from repro.model.factors import Platform
from repro.utils.tables import format_table


def test_bench_dependency_levels(benchmark, actfort, measurement):
    tdg = actfort.tdg()

    def regenerate():
        return {
            platform: tdg.level_fractions(platform)
            for platform in (Platform.WEB, Platform.MOBILE)
        }

    fractions = benchmark(regenerate)

    rows = dependency_level_rows(measurement)
    print(
        "\n"
        + format_table(
            ("level", "web %", "paper", "mobile %", "paper"),
            rows,
            title="Section IV-B -- dependency relationships",
        )
    )
    benchmark.extra_info["rows"] = [" | ".join(r) for r in rows]

    for platform in (Platform.WEB, Platform.MOBILE):
        measured = fractions[platform]
        paper = PAPER_DEPENDENCY[platform]
        # Who wins: direct dominates at ~3/4 on both platforms.
        assert abs(measured[DependencyLevel.DIRECT] - paper[DependencyLevel.DIRECT]) < 0.08
        # Every category the paper reports is populated.
        for level in DependencyLevel:
            assert measured[level] > 0.0, (platform, level)
        # Safe accounts are a small minority (paper: 4.44% / 2.22%).
        assert measured[DependencyLevel.SAFE] < 0.10

    # Crossover shape: mobile has deeper chains than web (two-layer
    # categories are larger on mobile, as in the paper's 20.59% vs 5.20%).
    assert (
        fractions[Platform.MOBILE][DependencyLevel.TWO_LAYER_FULL]
        > fractions[Platform.WEB][DependencyLevel.TWO_LAYER_FULL]
    )


def test_bench_couples_ablation(benchmark, ecosystem):
    """Without combining couples (unified masking), the mixed two-layer
    category collapses -- the couples mechanism is load-bearing."""

    def ablate():
        unified = UnifiedMaskingPolicy().apply(ecosystem)
        analyzer = ActFort.from_ecosystem(unified)
        return {
            platform: analyzer.tdg().level_fractions(platform)
            for platform in (Platform.WEB, Platform.MOBILE)
        }

    ablated = benchmark(ablate)
    baseline = ActFort.from_ecosystem(ecosystem)
    for platform in (Platform.WEB, Platform.MOBILE):
        base_mixed = baseline.tdg().level_fractions(platform)[
            DependencyLevel.TWO_LAYER_MIXED
        ]
        abl_mixed = ablated[platform][DependencyLevel.TWO_LAYER_MIXED]
        print(
            f"\n[{platform.value}] two_layer_mixed: baseline "
            f"{100 * base_mixed:.2f}% -> unified masking {100 * abl_mixed:.2f}%"
        )
        assert abl_mixed <= base_mixed
