"""Fig. 7 / Fig. 10: the active MitM attack and its preconditions.

Benchmarks the full fake-base-station sequence and ablates each
precondition the appendix's message chart depends on: the 4G jammer, radio
range (same cell), and GSM capability -- plus the stealth property that
distinguishes the active attack from passive sniffing (the victim's handset
stays silent).
"""

from repro.model.identity import IdentityGenerator
from repro.telecom.jammer import FourGJammer
from repro.telecom.mitm import ActiveMitM, MitMStep
from repro.telecom.network import GSMNetwork, RadioTech
from repro.utils.clock import Clock
from repro.utils.rng import SeedSequence
from repro.utils.tables import format_table


def _network():
    network = GSMNetwork(clock=Clock(), seeds=SeedSequence(7))
    network.add_cell("target-cell")
    network.add_cell("far-cell")
    return network


def test_bench_active_mitm_sequence(benchmark):
    def full_attack():
        network = _network()
        victim = IdentityGenerator(7).generate()
        network.provision_phone(
            victim.cellphone_number, "target-cell", preferred_tech=RadioTech.LTE
        )
        with FourGJammer(network, "target-cell"):
            mitm = ActiveMitM(network, "target-cell")
            outcome = mitm.execute(victim.cellphone_number)
            network.deliver_sms(
                victim.cellphone_number, "your code is 31337", sender="bank"
            )
            code = mitm.latest_code_from("bank")
            mitm.release()
        return outcome, code

    outcome, code = benchmark(full_attack)
    assert outcome.success
    assert code == "31337"
    assert [r.step for r in outcome.transcript] == list(MitMStep)
    print("\nFig. 10 sequence transcript:")
    for record in outcome.transcript:
        print(f"  t={record.at:5.1f}s {record.step.value}: {record.detail}")


def test_bench_mitm_precondition_ablation(benchmark):
    """Each missing precondition fails the attack at the expected step."""

    def ablation():
        results = {}
        victim = IdentityGenerator(9).generate()
        phone = victim.cellphone_number

        # (a) no jammer: LTE victim never downgrades.
        network = _network()
        network.provision_phone(phone, "target-cell", preferred_tech=RadioTech.LTE)
        results["no_jammer"] = ActiveMitM(network, "target-cell").execute(phone)

        # (b) out of range: rig in a different cell.
        network = _network()
        network.provision_phone(phone, "far-cell", preferred_tech=RadioTech.GSM)
        results["out_of_range"] = ActiveMitM(network, "target-cell").execute(phone)

        # (c) all preconditions met.
        network = _network()
        network.provision_phone(phone, "target-cell", preferred_tech=RadioTech.LTE)
        with FourGJammer(network, "target-cell"):
            results["jammer_on"] = ActiveMitM(network, "target-cell").execute(phone)
        return results

    results = benchmark(ablation)
    rows = [
        (
            label,
            "SUCCESS" if outcome.success else "FAILED",
            outcome.failed_step.value if outcome.failed_step else "-",
        )
        for label, outcome in results.items()
    ]
    print(
        "\n"
        + format_table(
            ("configuration", "outcome", "failed step"),
            rows,
            title="Active MitM precondition ablation",
        )
    )
    assert not results["no_jammer"].success
    assert results["no_jammer"].failed_step is MitMStep.FORCE_GSM_DOWNGRADE
    assert not results["out_of_range"].success
    assert results["jammer_on"].success
