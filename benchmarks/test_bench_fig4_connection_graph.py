"""Fig. 4: the connection graph among 44 online accounts.

Regenerates the 44-node strong-directivity graph, prints its adjacency
summary, and checks the figure's visual claims: a large red (fringe)
majority, a small blue (internal) minority, and edges that let the fringe
reach nearly everything.
"""

from repro.analysis.figures import (
    connection_graph_summary,
    fig4_graph,
    render_connection_graph,
)


def test_bench_fig4_connection_graph(benchmark, actfort):
    tdg = actfort.tdg()

    def regenerate():
        graph = fig4_graph(tdg, size=44)
        return graph, connection_graph_summary(graph)

    graph, summary = benchmark(regenerate)

    print("\n" + render_connection_graph(graph, max_edges=50))
    print(
        f"\nnodes={summary['nodes']:.0f} edges={summary['edges']:.0f} "
        f"fringe={summary['fringe']:.0f} internal={summary['internal']:.0f} "
        f"reachable-from-fringe={100 * summary['reachable_from_fringe']:.1f}%"
    )
    benchmark.extra_info["summary"] = {k: float(v) for k, v in summary.items()}

    assert summary["nodes"] == 44
    # The figure shows mostly red dots: fringe nodes are the majority
    # (~3/4 of services are SMS-only takeover-able).
    assert 0.55 < summary["fringe_share"] < 0.95
    assert summary["internal"] >= 3
    # The point of the figure: chains from fringe nodes blanket the graph.
    assert summary["reachable_from_fringe"] >= 0.90
    assert summary["edges"] > summary["nodes"]
