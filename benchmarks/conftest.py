"""Shared benchmark fixtures.

Each benchmark regenerates one table or figure of the paper and prints the
measured rows next to the published values (run with ``-s`` to see them;
they are also attached to the benchmark's ``extra_info``).
"""

from __future__ import annotations

import pytest

from repro.analysis.measurement import MeasurementStudy
from repro.catalog import build_default_ecosystem
from repro.core import ActFort


@pytest.fixture(scope="session")
def ecosystem():
    """The calibrated 201-service catalog."""
    return build_default_ecosystem()


@pytest.fixture(scope="session")
def actfort(ecosystem):
    """ActFort over the catalog, with the TDG pre-built."""
    analyzer = ActFort.from_ecosystem(ecosystem)
    analyzer.tdg()
    return analyzer


@pytest.fixture(scope="session")
def measurement(actfort):
    """The full Section IV measurement results."""
    return MeasurementStudy().run_actfort(actfort)
