"""Section V-B: the three real-world case studies, end to end.

Each benchmark run deploys a fresh seed ecosystem, generates the attack
path with ActFort, intercepts SMS codes over the simulated GSM air
interface, executes the chain, and (for the payment cases) authorizes a
payment from the hijacked account.
"""

from repro.attack.scenarios import (
    deploy_seed_ecosystem,
    run_case_i_baidu_wallet,
    run_case_ii_paypal_via_gmail,
    run_case_iii_alipay_via_ctrip,
)


def test_bench_case_i_baidu_wallet(benchmark):
    def scenario():
        return run_case_i_baidu_wallet(deploy_seed_ecosystem())

    result = benchmark(scenario)
    print("\n" + result.describe())
    assert result.success
    # "There is no intermediate attack needed."
    assert result.chain.depth == 0
    assert result.payment_receipt is not None


def test_bench_case_ii_paypal_via_gmail(benchmark):
    def scenario():
        return run_case_ii_paypal_via_gmail(deploy_seed_ecosystem())

    result = benchmark(scenario)
    print("\n" + result.describe())
    assert result.success
    # One intermediate account: the Gmail-class email provider.
    assert result.chain.depth == 1
    assert result.chain.services[0] == "gmail"
    assert result.chain.services[-1] == "paypal"


def test_bench_case_iii_alipay_mobile(benchmark):
    def scenario():
        return run_case_iii_alipay_via_ctrip(deploy_seed_ecosystem())

    result = benchmark(scenario)
    print("\n" + result.describe())
    assert result.success
    # Ctrip supplies the citizen ID that unlocks Alipay's mobile reset.
    assert result.chain.services == ("ctrip", "alipay")
    assert result.payment_receipt is not None


def test_bench_case_iii_alipay_web_customer_service(benchmark):
    def scenario():
        return run_case_iii_alipay_via_ctrip(
            deploy_seed_ecosystem(), web_variant=True
        )

    result = benchmark(scenario)
    print("\n" + result.describe())
    assert result.success
