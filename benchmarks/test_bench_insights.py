"""Section IV-B-2: the five key insights, plus an attacker-profile sweep.

The insights benchmark recomputes every insight check over the full
catalog; the profile sweep measures how the potential-victim set grows with
attacker strength (no interception -> baseline SMS rig -> SMS + leaked-PII
database), the ablation DESIGN.md calls out.
"""

from repro.analysis.insights import compute_insights
from repro.core.strategy import StrategyEngine
from repro.core.tdg import TransformationDependencyGraph
from repro.model.attacker import AttackerProfile
from repro.utils.tables import format_table


def test_bench_insights(benchmark, actfort):
    def regenerate():
        return compute_insights(actfort)

    checks = benchmark(regenerate)
    rows = [
        (check.key, "HOLDS" if check.holds else "FAILS", check.evidence[:90])
        for check in checks
    ]
    print(
        "\n"
        + format_table(
            ("insight", "verdict", "evidence"),
            rows,
            title="Section IV-B-2 -- key insights",
        )
    )
    assert len(checks) == 5
    for check in checks:
        assert check.holds, f"{check.key}: {check.evidence}"


def test_bench_attacker_profile_sweep(benchmark, actfort):
    nodes = actfort.tdg().nodes
    profiles = {
        "passive_observer": AttackerProfile.passive_observer(),
        "baseline_sms_rig": AttackerProfile.baseline(),
        "sms_plus_se_database": AttackerProfile.with_se_database(),
    }

    def sweep():
        sizes = {}
        for label, profile in profiles.items():
            tdg = TransformationDependencyGraph(nodes, profile)
            sizes[label] = len(
                StrategyEngine(tdg).forward_closure().compromised
            )
        return sizes

    sizes = benchmark(sweep)
    total = len(nodes)
    rows = [
        (label, f"{count}/{total}", f"{100 * count / total:.1f}%")
        for label, count in sizes.items()
    ]
    print(
        "\n"
        + format_table(
            ("attacker profile", "PAV", "fraction"),
            rows,
            title="Forward-closure size vs attacker strength",
        )
    )
    benchmark.extra_info["pav"] = sizes
    assert sizes["passive_observer"] == 0
    assert sizes["baseline_sms_rig"] > 0.85 * total
    assert sizes["sms_plus_se_database"] >= sizes["baseline_sms_rig"]
