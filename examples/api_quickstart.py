"""The AnalysisService facade: one typed surface over the whole pipeline.

The paper's pipeline (TDG -> levels -> measurement -> defense) used to be
driven through six entry-point styles; :class:`repro.api.AnalysisService`
is the single serving seam in front of all of them.  This walkthrough:

1. builds a service over the 201-service catalog,
2. runs a mixed query batch (planned once, shared engine work),
3. repeats it to show the version-keyed cache serving O(1) hits,
4. mutates the live ecosystem through the incremental engines,
5. re-queries at the new version, and
6. runs a staged defense-rollout what-if through the same facade.

Run:  python examples/api_quickstart.py
"""

import time

from repro import AnalysisService, build_default_ecosystem
from repro.api import (
    ClosureQuery,
    DefenseEvalQuery,
    EdgeSummaryQuery,
    LevelReportQuery,
    MeasurementQuery,
    RolloutQuery,
)
from repro.dynamic import email_hardening_rollout
from repro.model.factors import Platform
from repro.utils.tables import format_table


def timed(label, callable_):
    start = time.perf_counter()
    result = callable_()
    print(f"  {label}: {(time.perf_counter() - start) * 1e3:.2f}ms")
    return result


def main() -> None:
    # --- 1. build the service -------------------------------------------
    ecosystem = build_default_ecosystem()
    service = AnalysisService(ecosystem)
    print(
        f"AnalysisService over {len(service)} services, "
        f"version {service.version}\n"
    )

    # --- 2. one planned batch: levels + measurement + closure + edges ---
    workload = [
        LevelReportQuery(),
        MeasurementQuery(),
        ClosureQuery(),
        EdgeSummaryQuery(),
    ]
    print("cold batch (computes through the engines):")
    report, measured, closure, edges = timed(
        "execute_batch", lambda: service.execute_batch(workload)
    )
    for line in measured.summary_lines():
        print(f"    {line}")
    print(
        f"    PAV {closure.pav_size}/{len(service)}, "
        f"{edges.strong_edges} strong edges, {edges.fringe} fringe\n"
    )

    # --- 3. the warm repeat is served from the version-keyed cache ------
    print("warm repeat (same version -> O(1) cache hits):")
    timed("execute_batch", lambda: service.execute_batch(workload))
    stats = service.cache_stats()
    print(
        f"    cache: {stats.hits} hits / {stats.misses} misses "
        f"({100 * stats.hit_rate:.0f}% hit rate)\n"
    )

    # --- 4. mutate through the incremental engines ----------------------
    steps = email_hardening_rollout(service.ecosystem)
    first_wave = steps[0]
    print(f"applying mutation wave {first_wave.label!r}:")
    receipt = timed(
        "apply", lambda: service.replay(first_wave.mutations)[-1]
    )
    print(
        f"    delta: {receipt.delta.describe()} -> version "
        f"{receipt.version}\n"
    )

    # --- 5. re-query at the new version ---------------------------------
    print("re-query after the mutation (engines delta-BFS, not rebuild):")
    report2 = timed("execute", lambda: service.execute(LevelReportQuery()))
    direct_before = report.fractions[Platform.WEB]
    direct_after = report2.fractions[Platform.WEB]
    level = next(iter(direct_before))
    print(
        f"    web {level.value}: {100 * direct_before[level]:.1f}% -> "
        f"{100 * direct_after[level]:.1f}%\n"
    )

    # --- 6. what-ifs through the same facade ----------------------------
    print("defense ablation (DefenseEvalQuery) on the mutated state:")
    ablation = timed("execute", lambda: service.execute(DefenseEvalQuery()))
    rows = [
        (
            outcome.label,
            f"{outcome.pav_size}/{outcome.service_count}",
            f"{100 * outcome.safe_fraction[Platform.WEB]:.1f}%",
        )
        for outcome in ablation.row(service.primary_attacker)
    ]
    print(format_table(("variant", "PAV", "web safe"), rows))

    print("\nstaged rollout what-if (RolloutQuery, first five waves):")
    trajectory = timed(
        "execute",
        lambda: service.execute(
            RolloutQuery(steps=email_hardening_rollout(service.ecosystem)[:5])
        ),
    )
    print(
        format_table(
            ("step", "touched", "web direct", "web safe", "strong", "weak"),
            trajectory.rows(),
        )
    )

    # Every response is wire-ready.
    document = report2.to_dict()
    print(
        f"\nresponses serialize: LevelReportResult -> "
        f"{sorted(document)} keys, attacker={document['attacker']!r}"
    )


if __name__ == "__main__":
    main()
