"""What-if defense rollouts over a live, incrementally-maintained ecosystem.

Section VII evaluates each countermeasure as an all-at-once switch; real
deployments stage.  This walkthrough issues
:class:`~repro.api.RolloutQuery` what-ifs against an
:class:`~repro.api.AnalysisService` facade three ways:

1. replay the paper's email countermeasure one provider at a time over
   the 201-service catalog and watch the dependency-level trajectory,
2. repair platform asymmetry domain by domain on top of it,
3. drive a seeds-only rollout with weak-directivity (couple) edge counts
   streamed per step through ``iter_weak_edges``.

Run:  python examples/defense_rollout.py
"""

from repro import build_default_ecosystem
from repro.catalog.seeds import seed_profiles
from repro.core.tdg import DependencyLevel
from repro.defense.hardening import EmailHardening
from repro.api import AnalysisService, RolloutQuery
from repro.dynamic import (
    email_hardening_rollout,
    symmetry_repair_rollout,
)
from repro.model.factors import Platform
from repro.utils.tables import format_table


def main() -> None:
    ecosystem = build_default_ecosystem()

    # --- 1. email hardening, one provider at a time --------------------
    steps = email_hardening_rollout(ecosystem)
    print(
        f"rolling email hardening out across {len(steps)} providers "
        "(each step is absorbed as a delta by the live indexes -- no "
        "rebuild)...\n"
    )
    service = AnalysisService(ecosystem)
    trajectory = service.execute(RolloutQuery(steps=tuple(steps)))
    print(
        format_table(
            ("step", "touched", "web direct", "web safe", "strong edges", "weak edges"),
            trajectory.rows(),
            title="email hardening, provider by provider (201 services)",
        )
    )
    one_layer = trajectory.series(Platform.WEB, DependencyLevel.ONE_LAYER)
    drops = [
        (trajectory.points[i + 1].step, one_layer[i] - one_layer[i + 1])
        for i in range(len(steps))
    ]
    best_step, best_drop = max(drops, key=lambda item: item[1])
    print(
        f"\nbiggest one-layer reduction on web: {best_step} "
        f"(-{100 * best_drop:.1f} points) -- the rollout order insight the "
        "one-shot ablation cannot see\n"
    )

    # --- 2. + symmetry repair, domain by domain -------------------------
    combined = email_hardening_rollout(ecosystem) + symmetry_repair_rollout(
        EmailHardening().apply(ecosystem)
    )
    combined_trajectory = service.execute(
        RolloutQuery(steps=tuple(combined))
    )
    start = combined_trajectory.baseline
    end = combined_trajectory.final
    print(
        f"full staged plan ({len(combined)} steps): web safe "
        f"{100 * start.fraction(Platform.WEB, DependencyLevel.SAFE):.1f}% -> "
        f"{100 * end.fraction(Platform.WEB, DependencyLevel.SAFE):.1f}%, "
        f"strong edges {start.strong_edges} -> {end.strong_edges}\n"
    )

    # --- 3. seeds-only rollout with streamed weak-edge counts -----------
    seeds_only = ecosystem.restricted_to(p.name for p in seed_profiles())
    weak_trajectory = AnalysisService(seeds_only).execute(
        RolloutQuery(
            steps=tuple(email_hardening_rollout(seeds_only)),
            include_weak=True,
        )
    )
    print(
        format_table(
            ("step", "touched", "web direct", "web safe", "strong edges", "weak edges"),
            weak_trajectory.rows(),
            title="seed services only, weak edges streamed per step",
        )
    )


if __name__ == "__main__":
    main()
