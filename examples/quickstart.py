"""Quickstart: analyze an Online Account Ecosystem with ActFort.

Builds the calibrated 201-service catalog, runs the four ActFort stages,
prints the paper's headline statistics, and asks the strategy engine for an
attack chain into a Fintech target.

Run:  python examples/quickstart.py
"""

from repro import ActFort, Platform, build_default_ecosystem
from repro.utils.tables import format_percent


def main() -> None:
    # 1. The ecosystem under analysis (201 services; the paper's named
    #    services plus calibrated synthetic ones).
    ecosystem = build_default_ecosystem()
    print(f"ecosystem: {len(ecosystem)} services, "
          f"{ecosystem.total_auth_paths()} authentication paths")

    # 2. ActFort stages 1-3: authentication processes, information
    #    collection, and the Transformation Dependency Graph.
    actfort = ActFort.from_ecosystem(ecosystem)
    tdg = actfort.tdg()
    print(f"TDG: {len(tdg)} nodes, "
          f"{len(tdg.fringe_nodes())} fringe (SMS-only) nodes")

    # 3. Dependency levels -- Section IV-B's headline percentages.
    for platform in (Platform.WEB, Platform.MOBILE):
        fractions = tdg.level_fractions(platform)
        rendered = ", ".join(
            f"{level.value}={format_percent(value)}"
            for level, value in fractions.items()
        )
        print(f"[{platform.value}] {rendered}")

    # 4. Stage 4, scenario 1: what falls to a baseline SMS attacker?
    closure = actfort.potential_victims()
    print(f"potential account victims: {len(closure.compromised)}"
          f"/{len(ecosystem)} (safe: {len(closure.safe)})")

    # 5. Stage 4, scenario 2: a concrete chain into Alipay's mobile reset.
    chain = actfort.attack_chain("alipay", platform=Platform.MOBILE)
    print()
    print(chain.describe())


if __name__ == "__main__":
    main()
