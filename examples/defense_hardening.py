"""Applying and evaluating the Section VII countermeasures.

Runs the defense ablation (baseline vs each countermeasure vs all
combined), then demonstrates the Fig. 8 built-in authentication protocol at
the message level: the enrolled device approves; the attacker's device sees
nothing and cannot approve.

Run:  python examples/defense_hardening.py
"""

from repro import build_default_ecosystem
from repro.defense import BuiltinAuthService, DefenseEvaluation
from repro.defense.evaluation import outcome_rows
from repro.utils.tables import format_table


def main() -> None:
    ecosystem = build_default_ecosystem()

    print("evaluating countermeasures over the 201-service catalog "
          "(this re-measures the ecosystem six times)...\n")
    outcomes = DefenseEvaluation(ecosystem).evaluate()
    print(
        format_table(
            (
                "defense",
                "PAV",
                "web direct",
                "web safe",
                "mobile direct",
                "mobile safe",
            ),
            outcome_rows(outcomes),
            title="Section VII -- countermeasure ablation",
        )
    )

    # --- Fig. 8: the built-in OS authentication protocol ---------------
    print("\nFig. 8 built-in authentication walkthrough:")
    auth = BuiltinAuthService()
    auth.register("victim", "victim-phone")
    print("  (1) victim registers their device with the OS auth server")
    challenge = auth.request_login("alipay", "victim", location_hint="Hangzhou")
    print("  (2) alipay requests a login -> encrypted push (no SMS!)")

    print(f"  (3) pushes visible on the attacker's device: "
          f"{auth.pending_for('victim', 'attacker-phone')}")
    try:
        auth.approve(challenge, "attacker-phone")
    except PermissionError as exc:
        print(f"  (4) attacker approval rejected: {exc}")

    auth.approve(challenge, "victim-phone")
    print("  (5) victim approves on the enrolled device")
    print(f"  (6) alipay verifies the signal: {auth.verify(challenge)}")


if __name__ == "__main__":
    main()
