"""The Chain Reaction Attack end to end: the paper's three case studies.

Deploys the named seed services as live simulated infrastructure (accounts,
OTP flows, GSM network), then runs Cases I-III exactly as Section V
describes: ActFort generates the path, the OsmocomBB-style sniffer
intercepts the SMS codes over the air, and the executor walks the chain
until the payment platform falls.

Run:  python examples/chain_reaction_attack.py
"""

from repro.attack.scenarios import (
    deploy_seed_ecosystem,
    run_case_i_baidu_wallet,
    run_case_ii_paypal_via_gmail,
    run_case_iii_alipay_via_ctrip,
)


def main() -> None:
    print("deploying the seed-service ecosystem (live simulated internet +"
          " GSM network)...\n")

    for runner, kwargs in (
        (run_case_i_baidu_wallet, {}),
        (run_case_ii_paypal_via_gmail, {}),
        (run_case_iii_alipay_via_ctrip, {}),
        (run_case_iii_alipay_via_ctrip, {"web_variant": True}),
    ):
        result = runner(deploy_seed_ecosystem(), **kwargs)
        print(result.describe())
        print()

    print("All chains executed with over-the-air SMS interception only --")
    print("no victim-side access, exactly the paper's threat model.")


if __name__ == "__main__":
    main()
