"""Auditing an ecosystem the way a service provider would use ActFort.

The paper pitches ActFort as a tool for providers: measure the ecosystem,
find out which *other* services endanger yours, and quantify breach blast
radius.  This example:

1. reproduces the Section IV measurement (Fig. 3 / Table I / levels),
2. evaluates the five key insights,
3. answers "if service X is breached today, what else falls?" via the
   forward closure seeded with an Online Account Attacked Set.

Run:  python examples/ecosystem_audit.py
"""

from repro import ActFort, build_default_ecosystem
from repro.analysis import (
    MeasurementStudy,
    compute_insights,
    dependency_level_rows,
    table1_rows,
)
from repro.utils.tables import format_table


def main() -> None:
    ecosystem = build_default_ecosystem()
    actfort = ActFort.from_ecosystem(ecosystem)

    # --- Section IV measurement -------------------------------------
    results = MeasurementStudy().run_actfort(actfort)
    print("\n".join(results.summary_lines()))
    print()
    print(
        format_table(
            ("kind", "web %", "paper", "mobile %", "paper"),
            table1_rows(results),
            title="Table I -- information exposed after log-in",
        )
    )
    print()
    print(
        format_table(
            ("level", "web %", "paper", "mobile %", "paper"),
            dependency_level_rows(results),
            title="Dependency levels (Section IV-B)",
        )
    )

    # --- Key insights -------------------------------------------------
    print()
    for check in compute_insights(actfort):
        marker = "HOLDS " if check.holds else "FAILS "
        print(f"[{marker}] {check.title}")
        print(f"          {check.evidence}")

    # --- Breach blast radius ------------------------------------------
    print()
    engine = actfort.strategy()
    for breached in ("gmail", "ctrip", "jd"):
        closure = engine.forward_closure(initially_compromised=[breached])
        baseline = engine.forward_closure()
        extra = closure.compromised - baseline.compromised
        print(
            f"breach of {breached!r}: PAV {len(closure.compromised)} "
            f"(+{len(extra)} beyond the no-breach baseline)"
        )


if __name__ == "__main__":
    main()
