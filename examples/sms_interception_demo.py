"""The two SMS interception rigs, side by side (Sections V-A-2 / appendix).

Passive: an OsmocomBB-style sniffer with 16 C118 monitors cracks A5/1
bursts in the victim's cell -- the victim still receives their copy.

Active: a 4G jammer downgrades the victim to GSM, the fake base station
walks the Fig. 10 sequence, and from then on the victim's SMS terminates at
the attacker -- the handset stays silent.

Run:  python examples/sms_interception_demo.py
"""

from repro import FourGJammer, GSMNetwork, IdentityGenerator, OsmocomSniffer
from repro.telecom import ActiveMitM, CipherSuite, CrackModel, RadioTech
from repro.utils.clock import Clock
from repro.utils.rng import SeedSequence


def passive_demo() -> None:
    print("=== passive GSM sniffing (Fig. 6) ===")
    seeds = SeedSequence(1)
    network = GSMNetwork(clock=Clock(), seeds=seeds)
    network.add_cell("plaza", arfcns=tuple(range(512, 528)),
                     cipher=CipherSuite.A5_1)
    victim = IdentityGenerator(1).generate()
    network.provision_phone(victim.cellphone_number, "plaza",
                            preferred_tech=RadioTech.GSM)

    sniffer = OsmocomSniffer(
        network, "plaza", monitors=16,
        crack_model=CrackModel(success_probability=0.9, crack_seconds=30.0,
                               rng=seeds.stream("crack")),
    )
    sniffer.start()
    for index in range(10):
        network.clock.advance(61.0)
        network.deliver_sms(victim.cellphone_number,
                            f"your code is {700000 + index}", sender="bank")
    stats = sniffer.stats
    print(f"  sent 10 OTP messages; captured {stats['captured']} "
          f"(crack failures: {stats['missed_crack_failure']})")
    print(f"  latest code: {sniffer.latest_code_from('bank')}")


def active_demo() -> None:
    print("\n=== active MitM (Fig. 7 / Fig. 10) ===")
    network = GSMNetwork(clock=Clock(), seeds=SeedSequence(2))
    network.add_cell("plaza")
    victim = IdentityGenerator(2).generate()
    network.provision_phone(victim.cellphone_number, "plaza",
                            preferred_tech=RadioTech.LTE)

    mitm = ActiveMitM(network, "plaza")
    print("  without the jammer:",
          mitm.execute(victim.cellphone_number).failed_step)

    with FourGJammer(network, "plaza"):
        outcome = mitm.execute(victim.cellphone_number)
        for record in outcome.transcript:
            print(f"    t={record.at:5.1f}s {record.step.value}")
        network.deliver_sms(victim.cellphone_number,
                            "your code is 888888", sender="bank")
        print(f"  intercepted code: {mitm.latest_code_from('bank')}")
        mitm.release()


if __name__ == "__main__":
    passive_demo()
    active_demo()
